//! [`FaultBackplane`]: a backend-agnostic chaos interposer.
//!
//! Wraps *any* [`Backplane`] — the deterministic simulator or the real UDP
//! fabric — and applies a seed-deterministic fault schedule at the trait
//! seam: per-rail drop, duplication, reordering, corruption (counted and
//! discarded, the FCS role the trait contract assigns to backplanes), fixed
//! added delay, and timed blackouts / NIC stalls scripted by the same
//! [`FaultPlan`] DSL netsim replays natively. One schedule therefore
//! drives both transports, which is what lets the chaos soak suite assert
//! identical timing-independent protocol fingerprints sim-vs-UDP under
//! loss (`tests/tests/chaos_soak.rs`).
//!
//! Determinism contract: the per-frame *base* decisions (drop, dup,
//! reorder, corrupt) are a pure function of `(seed, node, rail, frame
//! index on that rail)` — [`ChaosConfig::decisions_for`] recomputes them
//! without a backplane, and a proptest pins that the observed effects are
//! identical regardless of how the caller interleaves `send`/`advance`
//! (`tests/tests/chaos_properties.rs`). Time-scripted faults (blackouts,
//! stalls, burst processes) additionally depend on the backplane clock at
//! submission, which is exact virtual time on the simulator and wall time
//! on UDP — same schedule, same *semantics*, physically different instants.
//!
//! Divergences from netsim's native replay, by design of a send-side
//! interposer: a blackout drops frames at submission (netsim also kills
//! frames already in flight), and a peer NIC stall is modeled by holding
//! the frame until the stall ends (netsim holds it in the receiving NIC).
//! Both preserve the protocol-visible effect — the frames do not arrive
//! while the fault is active.

use frame::Frame;
use me_trace::{FlightCode, FlightRecorder, Json};
use netsim::{covered, FaultPlan, GilbertElliott};
use std::cell::Cell;
use std::rc::Rc;

use super::{Backplane, BpRx};

/// Chaos schedule for one two-node fabric: seeded random per-frame faults
/// plus the scripted [`FaultPlan`] timeline. Probabilities are clamped to
/// `[0, 1]` at application time.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Seed for every per-frame random decision. The same seed reproduces
    /// the same decision stream per `(node, rail)` on any backend.
    pub seed: u64,
    /// Per-frame probability of a silent drop.
    pub drop: f64,
    /// Per-frame probability the frame is delivered twice.
    pub dup: f64,
    /// Per-frame probability the frame is held for
    /// [`ChaosConfig::reorder_delay_ns`], letting later frames overtake it.
    pub reorder: f64,
    /// How long a reordered frame is held back.
    pub reorder_delay_ns: u64,
    /// Per-frame probability of corruption. Per the [`Backplane`] contract
    /// corrupted frames are discarded by the backplane (the Ethernet-FCS
    /// role) — counted in [`ChaosStats::corrupt_dropped`], never delivered.
    pub corrupt: f64,
    /// Fixed extra delay added to every delivered frame.
    pub delay_ns: u64,
    /// Scripted timeline: blackouts ([`netsim::FaultAction::LinkDown`]),
    /// NIC stalls, Gilbert–Elliott burst processes. Times are on the
    /// wrapped backplane's clock.
    pub plan: FaultPlan,
}

impl ChaosConfig {
    /// A fault-free schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the per-frame drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the per-frame duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }

    /// Set the per-frame reorder probability and hold-back delay.
    pub fn with_reorder(mut self, p: f64, delay_ns: u64) -> Self {
        self.reorder = p;
        self.reorder_delay_ns = delay_ns;
        self
    }

    /// Set the per-frame corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Add a fixed delay to every delivered frame.
    pub fn with_delay(mut self, delay_ns: u64) -> Self {
        self.delay_ns = delay_ns;
        self
    }

    /// Attach a scripted fault timeline.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The first `n` base decisions for `node`'s lane on `rail` — the pure
    /// decision stream the interposer consumes, recomputed without a
    /// backplane. Scripted faults (blackouts, stalls, bursts) are *not*
    /// reflected here; they depend on submission time, not the stream.
    pub fn decisions_for(&self, node: usize, rail: usize, n: usize) -> Vec<ChaosDecision> {
        let mut rng = decision_seed(self.seed, node, rail);
        (0..n).map(|_| draw_decision(&mut rng, self)).collect()
    }
}

/// The base chaos verdict for one frame (see
/// [`ChaosConfig::decisions_for`]). Flags are drawn independently;
/// precedence at application time is corrupt > drop > (dup, reorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosDecision {
    /// Silently dropped.
    pub drop: bool,
    /// Delivered twice.
    pub dup: bool,
    /// Held back so later frames overtake.
    pub reorder: bool,
    /// Corrupted: counted and discarded.
    pub corrupt: bool,
}

/// Counters of everything the interposer did, summed over rails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Frames submitted through the interposer.
    pub frames_seen: u64,
    /// Frames silently dropped (base probability or burst process).
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back to reorder.
    pub reordered: u64,
    /// Frames corrupted — counted and discarded, FCS-style.
    pub corrupt_dropped: u64,
    /// Frames dropped because a scripted blackout covered submission time.
    pub blackout_dropped: u64,
    /// Frames held until a scripted peer NIC stall ended.
    pub stall_held: u64,
    /// Frames given added delay (fixed delay or reorder hold).
    pub delayed: u64,
}

impl ChaosStats {
    /// JSON rendering used by the flight-recorder context source and the
    /// telemetry bench report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("frames_seen", self.frames_seen)
            .set("dropped", self.dropped)
            .set("duplicated", self.duplicated)
            .set("reordered", self.reordered)
            .set("corrupt_dropped", self.corrupt_dropped)
            .set("blackout_dropped", self.blackout_dropped)
            .set("stall_held", self.stall_held)
            .set("delayed", self.delayed)
    }
}

/// Apply `f` to the stats behind a shared cell (`ChaosStats` is `Copy`).
fn bump(stats: &Cell<ChaosStats>, f: impl FnOnce(&mut ChaosStats)) {
    let mut s = stats.get();
    f(&mut s);
    stats.set(s);
}

/// One frame held back (reorder, delay, or peer stall), released by
/// `flush_due` in `(release_ns, submission order)` order.
struct HeldFrame {
    release_ns: u64,
    order: u64,
    rail: usize,
    frame: Frame,
}

/// Per-rail fault state: the decision RNG stream, the burst process, and
/// the pre-interpreted scripted timelines for this node's lane.
struct Lane {
    decision_rng: u64,
    burst_rng: u64,
    burst_bad: bool,
    burst_timeline: Vec<(u64, Option<GilbertElliott>)>,
    /// This node's link is administratively down (frames dropped at the NIC).
    local_down: Vec<(u64, u64)>,
    /// The peer's link is down (frames lost before arrival).
    peer_down: Vec<(u64, u64)>,
    /// The peer's receive path is stalled (frames held until it ends).
    peer_stall: Vec<(u64, u64)>,
    in_blackout: bool,
}

impl Lane {
    /// Advance the Gilbert–Elliott chain one frame and evaluate loss and
    /// corruption. Always consumes exactly three draws so the stream stays
    /// aligned whether or not a model is in force at `now`.
    fn burst_eval(&mut self, now: u64) -> (bool, bool) {
        let r_trans = draw_f64(&mut self.burst_rng);
        let r_loss = draw_f64(&mut self.burst_rng);
        let r_corrupt = draw_f64(&mut self.burst_rng);
        let model = self
            .burst_timeline
            .iter()
            .take_while(|&&(at, _)| at <= now)
            .last()
            .and_then(|&(_, m)| m);
        let Some(m) = model else {
            self.burst_bad = false;
            return (false, false);
        };
        let p_flip = if self.burst_bad {
            m.p_bad_to_good
        } else {
            m.p_good_to_bad
        };
        if r_trans < p_flip {
            self.burst_bad = !self.burst_bad;
        }
        let (loss, corrupt) = if self.burst_bad {
            (m.loss_bad, m.corrupt_bad)
        } else {
            (m.loss_good, m.corrupt_good)
        };
        (r_loss < loss, r_corrupt < corrupt)
    }
}

/// A [`Backplane`] that injects the [`ChaosConfig`] schedule in front of
/// any inner backend. See the module docs for the exact semantics.
pub struct FaultBackplane<B: Backplane> {
    inner: B,
    node: usize,
    cfg: ChaosConfig,
    lanes: Vec<Lane>,
    /// Held frames sorted by `(release_ns, order)`.
    held: Vec<HeldFrame>,
    next_order: u64,
    /// Shared so a flight-recorder context source can read the tallies at
    /// dump time while the interposer keeps mutating them.
    stats: Rc<Cell<ChaosStats>>,
    flight: FlightRecorder,
}

impl<B: Backplane> FaultBackplane<B> {
    /// Wrap `inner` (node `node`'s view of the fabric) under `cfg`.
    pub fn new(inner: B, node: usize, cfg: &ChaosConfig) -> Self {
        let peer = 1 - node;
        let lanes = (0..inner.rails())
            .map(|rail| Lane {
                decision_rng: decision_seed(cfg.seed, node, rail),
                burst_rng: mix(cfg.seed, node, rail, 0xB0B5),
                burst_bad: false,
                burst_timeline: cfg.plan.burst_timeline(node, rail),
                local_down: cfg.plan.down_intervals(node, rail),
                peer_down: cfg.plan.down_intervals(peer, rail),
                peer_stall: cfg.plan.stall_intervals(peer, rail),
                in_blackout: false,
            })
            .collect();
        Self {
            inner,
            node,
            cfg: cfg.clone(),
            lanes,
            held: Vec::new(),
            next_order: 0,
            stats: Rc::new(Cell::new(ChaosStats::default())),
            flight: FlightRecorder::disabled(),
        }
    }

    /// Everything the interposer has done so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats.get()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap, discarding any still-held frames (they were in flight; the
    /// protocol treats them as lost).
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Record injected faults into `flight` (drops, corruptions, blackout
    /// entries) for post-mortem dumps, and register this interposer's
    /// tallies as a dump-time context source: every post-mortem carries
    /// `context["chaos.node<N>"]` with the counts at the moment of the dump.
    pub fn set_flight(&mut self, flight: &FlightRecorder) {
        self.flight = flight.clone();
        let stats = self.stats.clone();
        flight.add_context_source(
            &format!("chaos.node{}", self.node),
            Rc::new(move || stats.get().to_json()),
        );
    }

    /// Release every held frame whose time has come, in release order.
    fn flush_due(&mut self, now: u64) {
        while self.held.first().is_some_and(|h| h.release_ns <= now) {
            let h = self.held.remove(0);
            // A rejected send is a transmit-queue loss; the protocol
            // recovers it like any other.
            let _ = self.inner.send(h.rail, h.frame);
        }
    }

    /// Queue a frame for release at `release_ns`, keeping release order.
    fn hold(&mut self, release_ns: u64, rail: usize, frame: Frame) {
        let order = self.next_order;
        self.next_order += 1;
        let key = (release_ns, order);
        let pos = self
            .held
            .partition_point(|h| (h.release_ns, h.order) <= key);
        self.held.insert(
            pos,
            HeldFrame {
                release_ns,
                order,
                rail,
                frame,
            },
        );
    }
}

impl<B: Backplane> Backplane for FaultBackplane<B> {
    fn rails(&self) -> usize {
        self.inner.rails()
    }

    fn mtu(&self) -> usize {
        self.inner.mtu()
    }

    fn peer_mtu(&self) -> usize {
        self.inner.peer_mtu()
    }

    fn local_mac(&self, rail: usize) -> frame::MacAddr {
        self.inner.local_mac(rail)
    }

    fn peer_mac(&self, rail: usize) -> frame::MacAddr {
        self.inner.peer_mac(rail)
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn send(&mut self, rail: usize, frame: Frame) -> bool {
        let now = self.inner.now_ns();
        self.flush_due(now);
        bump(&self.stats, |s| s.frames_seen += 1);
        let seq = frame.header.seq as u64;
        let d = draw_decision(&mut self.lanes[rail].decision_rng, &self.cfg);
        let (burst_loss, burst_corrupt) = self.lanes[rail].burst_eval(now);
        let lane = &mut self.lanes[rail];

        // Scripted blackout: the frame never makes it onto the wire. The
        // send still "succeeds" — accepted, not delivered, exactly the
        // trait's loss semantics.
        if covered(&lane.local_down, now) || covered(&lane.peer_down, now) {
            bump(&self.stats, |s| s.blackout_dropped += 1);
            if !lane.in_blackout {
                lane.in_blackout = true;
                self.flight.note(
                    FlightCode::FaultInjected,
                    self.node,
                    None,
                    Some(rail as u32),
                    0,
                    now,
                    now,
                );
            }
            return true;
        }
        lane.in_blackout = false;

        if d.corrupt || burst_corrupt {
            bump(&self.stats, |s| s.corrupt_dropped += 1);
            self.flight.note(
                FlightCode::FrameCorrupt,
                self.node,
                None,
                Some(rail as u32),
                seq,
                0,
                now,
            );
            return true;
        }
        if d.drop || burst_loss {
            bump(&self.stats, |s| s.dropped += 1);
            self.flight.note(
                FlightCode::FrameDrop,
                self.node,
                None,
                Some(rail as u32),
                seq,
                0,
                now,
            );
            return true;
        }

        let mut release = now.saturating_add(self.cfg.delay_ns);
        if d.reorder {
            bump(&self.stats, |s| s.reordered += 1);
            release = release.saturating_add(self.cfg.reorder_delay_ns);
        }
        // Peer receive path stalled: hold until the stall ends (the frames
        // netsim would park in the frozen NIC).
        if let Some(end) = stall_release(&self.lanes[rail].peer_stall, release) {
            bump(&self.stats, |s| s.stall_held += 1);
            release = release.max(end);
        }

        let dup = d.dup;
        if dup {
            bump(&self.stats, |s| s.duplicated += 1);
        }
        let accepted = if release > now {
            bump(&self.stats, |s| s.delayed += 1);
            self.hold(release, rail, frame.clone());
            true
        } else {
            self.inner.send(rail, frame.clone())
        };
        if dup {
            // The duplicate goes out immediately — if the original is
            // held, the copy overtakes it, which is also a reordering.
            let _ = self.inner.send(rail, frame);
        }
        accepted
    }

    fn next(&mut self) -> Option<BpRx> {
        self.flush_due(self.inner.now_ns());
        self.inner.next()
    }

    fn tx_backlog_ns(&self, rail: usize) -> u64 {
        self.inner.tx_backlog_ns(rail)
    }

    fn advance(&mut self, until_ns: u64) -> u64 {
        loop {
            let now = self.inner.now_ns();
            self.flush_due(now);
            // Never sleep through a hold-queue release: advance in steps
            // bounded by the earliest pending release.
            let target = match self.held.first().map(|h| h.release_ns) {
                Some(r) if r < until_ns => r.max(now.saturating_add(1)),
                _ => until_ns,
            };
            let reached = self.inner.advance(target);
            self.flush_due(reached);
            if reached >= until_ns {
                return reached;
            }
            if reached < target {
                // The inner backend stopped early: frames arrived somewhere
                // on the fabric. Hand control back so the driver polls.
                return reached;
            }
        }
    }
}

/// If `t` falls inside a stall interval, the instant the stall ends.
fn stall_release(intervals: &[(u64, u64)], t: u64) -> Option<u64> {
    intervals
        .iter()
        .take_while(|&&(from, _)| from <= t)
        .find(|&&(_, to)| t < to)
        .map(|&(_, to)| to)
}

/// Seed of the base-decision stream for `(seed, node, rail)`.
fn decision_seed(seed: u64, node: usize, rail: usize) -> u64 {
    mix(seed, node, rail, 0xD1CE)
}

/// splitmix64-style seed derivation; never returns 0 (xorshift fixpoint).
fn mix(seed: u64, node: usize, rail: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ (node as u64).wrapping_mul(0xA24B_AED4_963E_E407)
        ^ (rail as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)
        ^ salt;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// xorshift64* step.
fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `[0, 1)`.
fn draw_f64(s: &mut u64) -> f64 {
    (xorshift(s) >> 11) as f64 / (1u64 << 53) as f64
}

/// One frame's base decision: exactly four draws, in a fixed order, so the
/// stream position is a pure function of the frame index.
fn draw_decision(rng: &mut u64, cfg: &ChaosConfig) -> ChaosDecision {
    let r_corrupt = draw_f64(rng);
    let r_drop = draw_f64(rng);
    let r_dup = draw_f64(rng);
    let r_reorder = draw_f64(rng);
    ChaosDecision {
        corrupt: r_corrupt < cfg.corrupt.clamp(0.0, 1.0),
        drop: r_drop < cfg.drop.clamp(0.0, 1.0),
        dup: r_dup < cfg.dup.clamp(0.0, 1.0),
        reorder: r_reorder < cfg.reorder.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use frame::{FrameFlags, FrameHeader, FrameKind, MacAddr};
    use netsim::time::ms;

    /// A recording backend with a manually stepped clock: `advance` jumps
    /// straight to the deadline, `send` logs `(rail, seq)`.
    struct MockBp {
        rails: usize,
        now: u64,
        sent: Vec<(usize, u32)>,
    }

    impl MockBp {
        fn new(rails: usize) -> Self {
            Self {
                rails,
                now: 0,
                sent: Vec::new(),
            }
        }
    }

    impl Backplane for MockBp {
        fn rails(&self) -> usize {
            self.rails
        }
        fn mtu(&self) -> usize {
            frame::MAX_PAYLOAD
        }
        fn peer_mtu(&self) -> usize {
            frame::MAX_PAYLOAD
        }
        fn local_mac(&self, rail: usize) -> MacAddr {
            MacAddr::new(0, rail as u8)
        }
        fn peer_mac(&self, rail: usize) -> MacAddr {
            MacAddr::new(1, rail as u8)
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
        fn send(&mut self, rail: usize, frame: Frame) -> bool {
            self.sent.push((rail, frame.header.seq));
            true
        }
        fn next(&mut self) -> Option<BpRx> {
            None
        }
        fn tx_backlog_ns(&self, _rail: usize) -> u64 {
            0
        }
        fn advance(&mut self, until_ns: u64) -> u64 {
            self.now = self.now.max(until_ns);
            self.now
        }
    }

    fn test_frame(seq: u32) -> Frame {
        Frame {
            src: MacAddr::new(0, 0),
            dst: MacAddr::new(1, 0),
            header: FrameHeader {
                kind: FrameKind::Data,
                flags: FrameFlags::empty(),
                conn: 0,
                seq,
                ack: 0,
                op_id: 0,
                op_total_len: 0,
                fence_floor: 0,
                remote_addr: 0,
                aux: 0,
            },
            payload: Bytes::new(),
        }
    }

    #[test]
    fn decisions_match_observed_effects_with_zero_delay() {
        let cfg = ChaosConfig::new(42)
            .with_drop(0.3)
            .with_dup(0.2)
            .with_corrupt(0.1);
        let n = 200;
        let decisions = cfg.decisions_for(0, 0, n);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        for seq in 0..n as u32 {
            assert!(bp.send(0, test_frame(seq)));
        }
        let mut expect: Vec<(usize, u32)> = Vec::new();
        for (seq, d) in decisions.iter().enumerate() {
            if d.corrupt || d.drop {
                continue;
            }
            expect.push((0, seq as u32));
            if d.dup {
                expect.push((0, seq as u32));
            }
        }
        assert_eq!(bp.inner().sent, expect);
        let s = bp.stats();
        assert_eq!(s.frames_seen, n as u64);
        assert!(s.dropped > 0 && s.duplicated > 0 && s.corrupt_dropped > 0);
        assert_eq!(
            s.frames_seen - s.dropped - s.corrupt_dropped + s.duplicated,
            bp.inner().sent.len() as u64
        );
    }

    #[test]
    fn same_seed_same_stream_per_lane() {
        let cfg = ChaosConfig::new(7).with_drop(0.5).with_reorder(0.25, 10);
        assert_eq!(cfg.decisions_for(0, 1, 64), cfg.decisions_for(0, 1, 64));
        // Different lanes draw different streams (overwhelmingly likely to
        // differ over 64 frames at p=0.5).
        assert_ne!(cfg.decisions_for(0, 0, 64), cfg.decisions_for(0, 1, 64));
        assert_ne!(cfg.decisions_for(0, 0, 64), cfg.decisions_for(1, 0, 64));
    }

    #[test]
    fn blackout_window_drops_then_recovers() {
        let plan = netsim::FaultPlan::new().rail_down(ms(1), 0).rail_up(ms(2), 0);
        let cfg = ChaosConfig::new(1).with_plan(plan);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        bp.send(0, test_frame(0)); // t=0: before the blackout
        bp.advance(ms(1).as_nanos() + 1);
        assert!(bp.send(0, test_frame(1))); // inside: accepted, dropped
        bp.advance(ms(2).as_nanos() + 1);
        bp.send(0, test_frame(2)); // after: delivered
        assert_eq!(bp.inner().sent, vec![(0, 0), (0, 2)]);
        assert_eq!(bp.stats().blackout_dropped, 1);
    }

    #[test]
    fn peer_blackout_also_drops() {
        // Peer (node 1) link down forever: node 0's frames are lost at
        // arrival, so the interposer drops them at submission.
        let plan = netsim::FaultPlan::new().link_down(ms(0), 1, 0);
        let cfg = ChaosConfig::new(1).with_plan(plan);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        bp.advance(1);
        assert!(bp.send(0, test_frame(0)));
        assert!(bp.inner().sent.is_empty());
        assert_eq!(bp.stats().blackout_dropped, 1);
    }

    #[test]
    fn reorder_holds_until_release() {
        let cfg = ChaosConfig::new(3).with_reorder(1.0, 1000);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        bp.send(0, test_frame(0));
        assert!(bp.inner().sent.is_empty(), "held for reordering");
        bp.advance(500);
        assert!(bp.inner().sent.is_empty(), "not due yet");
        bp.advance(2000);
        assert_eq!(bp.inner().sent, vec![(0, 0)]);
        assert_eq!(bp.stats().reordered, 1);
        assert_eq!(bp.stats().delayed, 1);
    }

    #[test]
    fn nic_stall_holds_frames_until_stall_end() {
        let plan = netsim::FaultPlan::new().nic_stall(ms(1), 1, 0, ms(4));
        let cfg = ChaosConfig::new(9).with_plan(plan);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        bp.advance(ms(2).as_nanos()); // inside the peer's stall window
        bp.send(0, test_frame(0));
        assert!(bp.inner().sent.is_empty(), "held by the peer stall");
        bp.advance(ms(5).as_nanos() + 1);
        assert_eq!(bp.inner().sent, vec![(0, 0)]);
        assert_eq!(bp.stats().stall_held, 1);
    }

    #[test]
    fn duplicate_overtakes_held_original() {
        let cfg = ChaosConfig::new(11).with_delay(100).with_dup(1.0);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        bp.send(0, test_frame(5));
        // The copy went straight through; the original is still held.
        assert_eq!(bp.inner().sent, vec![(0, 5)]);
        bp.advance(200);
        assert_eq!(bp.inner().sent, vec![(0, 5), (0, 5)]);
        assert_eq!(bp.stats().duplicated, 1);
    }

    #[test]
    fn burst_process_loses_frames_in_bad_state() {
        let ge = GilbertElliott::bursty_loss(0.5, 0.1, 1.0);
        let plan = netsim::FaultPlan::new().burst(
            netsim::time::ms(0),
            netsim::FaultTarget::Rail { rail: 0 },
            ge,
        );
        let cfg = ChaosConfig::new(17).with_plan(plan);
        let mut bp = FaultBackplane::new(MockBp::new(1), 0, &cfg);
        for seq in 0..200u32 {
            bp.send(0, test_frame(seq));
        }
        let s = bp.stats();
        assert!(s.dropped > 0, "bad state at loss 1.0 must drop: {s:?}");
        assert!(
            (bp.inner().sent.len() as u64) + s.dropped == 200,
            "every frame either delivered or burst-dropped: {s:?}"
        );
    }
}
