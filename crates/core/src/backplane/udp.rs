//! The real-socket implementation of the [`Backplane`] trait: one
//! non-blocking UDP socket per rail, cross-connected over loopback.
//!
//! A [`UdpFabric`] owns **all** sockets of a two-node fabric — `2 × rails`
//! of them — so that a single-threaded poll loop can drive both endpoints:
//! [`Backplane::advance`] on either node drains every socket into per-node
//! receive queues and returns as soon as anything arrived anywhere, exactly
//! mirroring the simulated fabric's early-stop semantics.
//!
//! Frames cross the sockets in the MultiEdge wire format
//! ([`frame::encode_frame_into`] / [`frame::decode_frame`]); each datagram
//! is one frame. The Ethernet MAC addresses are not carried on the wire —
//! a datagram arriving on node `n`'s rail-`r` socket is *expected* to come
//! from the peer's rail-`r` socket, so the addresses are reconstructed from
//! (node, rail) exactly as a NIC would fill them in. The expectation is now
//! **checked**, not assumed: the sockets are unconnected, every received
//! datagram's source address is compared against the peer socket bound at
//! fabric construction, and a mismatch is counted, dropped, and surfaced as
//! a typed [`UdpRxError::UnknownSource`] — the multi-host-addressing gap
//! the ROADMAP notes, made visible instead of silently misattributed.
//!
//! Datagrams that fail to decode split two ways, the role the Ethernet FCS
//! plays on a real wire: checksum failures count as
//! [`UdpFabricStats::frames_corrupt_dropped`] (bit damage in flight) and
//! are noted as flight-recorder `frame_corrupt` events when a recorder is
//! attached; structurally invalid datagrams (truncated, bad kind/length)
//! count as [`UdpFabricStats::frames_malformed_dropped`]. Both kinds also
//! park a bounded [`UdpRxError`] log readable via
//! [`UdpFabric::take_rx_error`].
//!
//! The clock is wall time: nanoseconds since the fabric was created. All
//! protocol deadlines therefore run on real time here, which is the whole
//! point — the cross-validation bench compares phase attributions measured
//! on this clock against the simulator's virtual clock (see
//! `docs/BACKPLANE.md`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::rc::Rc;
use std::time::{Duration, Instant};

use frame::{decode_frame, encode_frame_into, CodecError, Frame, MacAddr};
use me_trace::{FlightCode, FlightRecorder, Json};

use super::{Backplane, BpRx};

/// Largest encoded frame: header + max payload (fits any MultiEdge frame).
const DATAGRAM_BUF: usize = frame::HEADER_LEN + frame::MAX_PAYLOAD;

/// Most parked [`UdpRxError`]s retained before the oldest are discarded.
const RX_ERROR_LOG: usize = 32;

/// How the idle loop in [`Backplane::advance`] waits (see
/// [`UdpFabric::new_with`]). The defaults spin briefly for the
/// microsecond-scale loopback latencies, then yield, then sleep — so a
/// long protocol deadline (a backed-off RTO during a blackout) does not
/// burn a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpFabricConfig {
    /// Busy-spin iterations before starting to yield the core.
    pub spin_before_yield: u32,
    /// `yield_now` iterations before falling back to sleeping.
    pub yields_before_sleep: u32,
    /// Sleep granularity once spinning and yielding are exhausted (capped
    /// by the remaining deadline).
    pub idle_sleep: Duration,
}

impl Default for UdpFabricConfig {
    fn default() -> Self {
        Self {
            spin_before_yield: 64,
            yields_before_sleep: 256,
            idle_sleep: Duration::from_micros(50),
        }
    }
}

/// Why a received datagram was dropped instead of delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpRxError {
    /// A datagram arrived from an address that is not the peer socket for
    /// this `(node, rail)` — the two-node loopback reconstruction would
    /// have mislabeled it, so it is rejected instead.
    UnknownSource {
        /// Node whose socket received the datagram.
        node: usize,
        /// Rail index of that socket.
        rail: usize,
        /// The unexpected source address.
        from: SocketAddr,
    },
    /// The datagram decoded structurally but failed the frame checksum —
    /// bit damage in flight, the FCS-drop case.
    Corrupt {
        /// Node whose socket received the datagram.
        node: usize,
        /// Rail index of that socket.
        rail: usize,
        /// The checksum failure.
        err: CodecError,
    },
    /// The datagram is not a MultiEdge frame at all (truncated, bad kind,
    /// bad length).
    Malformed {
        /// Node whose socket received the datagram.
        node: usize,
        /// Rail index of that socket.
        rail: usize,
        /// The structural decode failure.
        err: CodecError,
    },
}

impl std::fmt::Display for UdpRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpRxError::UnknownSource { node, rail, from } => write!(
                f,
                "datagram from unknown source {from} on node {node} rail {rail}"
            ),
            UdpRxError::Corrupt { node, rail, err } => write!(
                f,
                "corrupt datagram on node {node} rail {rail}: {err:?}"
            ),
            UdpRxError::Malformed { node, rail, err } => write!(
                f,
                "malformed datagram on node {node} rail {rail}: {err:?}"
            ),
        }
    }
}

impl std::error::Error for UdpRxError {}

impl UdpRxError {
    /// JSON rendering used by the flight-recorder context source.
    pub fn to_json(&self) -> Json {
        match self {
            UdpRxError::UnknownSource { node, rail, from } => Json::obj()
                .set("kind", "unknown_source")
                .set("node", *node)
                .set("rail", *rail)
                .set("from", from.to_string()),
            UdpRxError::Corrupt { node, rail, err } => Json::obj()
                .set("kind", "corrupt")
                .set("node", *node)
                .set("rail", *rail)
                .set("detail", format!("{err:?}")),
            UdpRxError::Malformed { node, rail, err } => Json::obj()
                .set("kind", "malformed")
                .set("node", *node)
                .set("rail", *rail)
                .set("detail", format!("{err:?}")),
        }
    }
}

/// Receive-path counters of one [`UdpFabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UdpFabricStats {
    /// Datagrams decoded and delivered to a node's queue.
    pub delivered: u64,
    /// Datagrams dropped on a checksum failure (the FCS role).
    pub frames_corrupt_dropped: u64,
    /// Datagrams dropped as structurally invalid (truncated, bad header).
    pub frames_malformed_dropped: u64,
    /// Datagrams dropped because their source address was not the expected
    /// peer socket.
    pub unknown_source_dropped: u64,
    /// Parked [`UdpRxError`] entries evicted from the bounded error log
    /// before anyone read them — nonzero means the typed error detail (not
    /// the drop itself, which the counters above retain) was lost.
    pub rx_errors_dropped: u64,
}

impl UdpFabricStats {
    /// JSON rendering used by the flight-recorder context source and the
    /// telemetry bench report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("delivered", self.delivered)
            .set("frames_corrupt_dropped", self.frames_corrupt_dropped)
            .set("frames_malformed_dropped", self.frames_malformed_dropped)
            .set("unknown_source_dropped", self.unknown_source_dropped)
            .set("rx_errors_dropped", self.rx_errors_dropped)
    }
}

/// All sockets of one two-node loopback fabric (see module docs).
pub struct UdpFabric {
    /// `sockets[node][rail]`; unconnected, sends address
    /// `peer_addrs[node][rail]`.
    sockets: Vec<Vec<UdpSocket>>,
    /// `peer_addrs[node][rail]`: where node's rail sends, and the only
    /// source address its receives accept.
    peer_addrs: Vec<Vec<SocketAddr>>,
    /// Per-node receive queues fed by [`UdpFabric::poll_all`].
    queues: [RefCell<VecDeque<BpRx>>; 2],
    /// Wall-clock epoch: `now_ns` is elapsed time since this instant.
    epoch: Instant,
    /// Idle-wait behavior of `advance`.
    cfg: UdpFabricConfig,
    /// Total datagrams delivered (the advance early-stop signal).
    delivered: Cell<u64>,
    /// Datagrams dropped on checksum failure.
    corrupt_dropped: Cell<u64>,
    /// Datagrams dropped as structurally invalid.
    malformed_dropped: Cell<u64>,
    /// Datagrams dropped for an unexpected source address.
    unknown_source_dropped: Cell<u64>,
    /// Bounded log of receive errors (newest kept, oldest discarded).
    rx_errors: RefCell<VecDeque<UdpRxError>>,
    /// Errors evicted from `rx_errors` unread (overflow observability).
    rx_errors_dropped: Cell<u64>,
    /// Optional flight recorder: corrupt drops are noted as trace events.
    flight: RefCell<FlightRecorder>,
    /// Reusable receive buffer.
    buf: RefCell<Box<[u8]>>,
    /// Reusable encode scratch.
    scratch: RefCell<Vec<u8>>,
}

impl UdpFabric {
    /// Bind `2 × rails` loopback sockets with the default
    /// [`UdpFabricConfig`].
    ///
    /// # Errors
    ///
    /// Returns any socket `bind`/configuration error verbatim.
    pub fn new(rails: usize) -> std::io::Result<Rc<UdpFabric>> {
        Self::new_with(rails, UdpFabricConfig::default())
    }

    /// Bind `2 × rails` loopback sockets with explicit idle-wait behavior.
    ///
    /// # Errors
    ///
    /// Returns any socket `bind`/configuration error verbatim.
    pub fn new_with(rails: usize, cfg: UdpFabricConfig) -> std::io::Result<Rc<UdpFabric>> {
        assert!(rails >= 1, "a fabric needs at least one rail");
        let mut sockets: Vec<Vec<UdpSocket>> = Vec::with_capacity(2);
        for _node in 0..2 {
            let mut per_rail = Vec::with_capacity(rails);
            for _rail in 0..rails {
                let s = UdpSocket::bind("127.0.0.1:0")?;
                s.set_nonblocking(true)?;
                per_rail.push(s);
            }
            sockets.push(per_rail);
        }
        let mut peer_addrs: Vec<Vec<SocketAddr>> = Vec::with_capacity(2);
        for node in 0..2 {
            let mut addrs = Vec::with_capacity(rails);
            for sock in &sockets[1 - node] {
                addrs.push(sock.local_addr()?);
            }
            peer_addrs.push(addrs);
        }
        Ok(Rc::new(UdpFabric {
            sockets,
            peer_addrs,
            queues: [RefCell::default(), RefCell::default()],
            epoch: Instant::now(),
            cfg,
            delivered: Cell::new(0),
            corrupt_dropped: Cell::new(0),
            malformed_dropped: Cell::new(0),
            unknown_source_dropped: Cell::new(0),
            rx_errors: RefCell::new(VecDeque::new()),
            rx_errors_dropped: Cell::new(0),
            flight: RefCell::new(FlightRecorder::disabled()),
            buf: RefCell::new(vec![0u8; DATAGRAM_BUF].into_boxed_slice()),
            scratch: RefCell::new(Vec::with_capacity(DATAGRAM_BUF)),
        }))
    }

    /// Both nodes' backplane views of this fabric.
    pub fn pair(self: &Rc<Self>) -> (UdpBackplane, UdpBackplane) {
        (
            UdpBackplane {
                fabric: self.clone(),
                node: 0,
            },
            UdpBackplane {
                fabric: self.clone(),
                node: 1,
            },
        )
    }

    /// Receive-path counters.
    pub fn stats(&self) -> UdpFabricStats {
        UdpFabricStats {
            delivered: self.delivered.get(),
            frames_corrupt_dropped: self.corrupt_dropped.get(),
            frames_malformed_dropped: self.malformed_dropped.get(),
            unknown_source_dropped: self.unknown_source_dropped.get(),
            rx_errors_dropped: self.rx_errors_dropped.get(),
        }
    }

    /// Datagrams that failed to decode and were dropped — corrupt plus
    /// malformed, the FCS stand-in (kept for callers of the pre-split
    /// counter).
    pub fn decode_dropped(&self) -> u64 {
        self.corrupt_dropped.get() + self.malformed_dropped.get()
    }

    /// The oldest retained receive error, if any (the log keeps the newest
    /// `RX_ERROR_LOG` entries).
    pub fn take_rx_error(&self) -> Option<UdpRxError> {
        self.rx_errors.borrow_mut().pop_front()
    }

    /// Record corrupt-frame drops into `flight` as `frame_corrupt` events,
    /// and register the fabric's receive-path state as a dump-time context
    /// source: every post-mortem carries `context.udp_fabric` with the
    /// counters plus the still-parked [`UdpRxError`] log. The source holds
    /// a `Weak` back-reference — the fabric owns the recorder, so a strong
    /// one would leak both.
    pub fn set_flight(self: &Rc<Self>, flight: &FlightRecorder) {
        *self.flight.borrow_mut() = flight.clone();
        let fabric = Rc::downgrade(self);
        flight.add_context_source(
            "udp_fabric",
            Rc::new(move || {
                let Some(fabric) = fabric.upgrade() else {
                    return Json::obj().set("gone", true);
                };
                let errors: Vec<Json> = fabric
                    .rx_errors
                    .borrow()
                    .iter()
                    .map(UdpRxError::to_json)
                    .collect();
                fabric.stats().to_json().set("rx_errors", errors)
            }),
        );
    }

    /// The local address of `node`'s socket on `rail` (testing hook for
    /// foreign-datagram scenarios).
    pub fn local_addr(&self, node: usize, rail: usize) -> SocketAddr {
        self.sockets[node][rail]
            .local_addr()
            .expect("bound socket has an address")
    }

    /// Chaos/testing hook: push raw bytes from `node`'s rail socket to the
    /// peer, bypassing frame encoding — how the corrupt/malformed receive
    /// paths are exercised against a real kernel round trip.
    ///
    /// # Errors
    ///
    /// Returns the socket send error verbatim.
    pub fn inject_raw(&self, node: usize, rail: usize, bytes: &[u8]) -> std::io::Result<()> {
        self.sockets[node][rail]
            .send_to(bytes, self.peer_addrs[node][rail])
            .map(|_| ())
    }

    fn rails(&self) -> usize {
        self.sockets[0].len()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_rx_error(&self, err: UdpRxError) {
        let mut log = self.rx_errors.borrow_mut();
        if log.len() >= RX_ERROR_LOG {
            log.pop_front();
            // Eviction is silent data loss without a counter: the drop
            // stays visible in `stats()` even after the detail is gone.
            self.rx_errors_dropped.set(self.rx_errors_dropped.get() + 1);
        }
        log.push_back(err);
    }

    /// Drain every socket of both nodes into the per-node queues.
    fn poll_all(&self) {
        let now = self.now_ns();
        let mut buf = self.buf.borrow_mut();
        for node in 0..2 {
            for (rail, sock) in self.sockets[node].iter().enumerate() {
                loop {
                    match sock.recv_from(&mut buf[..]) {
                        Ok((n, from)) => {
                            if from != self.peer_addrs[node][rail] {
                                self.unknown_source_dropped
                                    .set(self.unknown_source_dropped.get() + 1);
                                self.push_rx_error(UdpRxError::UnknownSource {
                                    node,
                                    rail,
                                    from,
                                });
                                continue;
                            }
                            let src = MacAddr::new((1 - node) as u16, rail as u8);
                            let dst = MacAddr::new(node as u16, rail as u8);
                            match decode_frame(src, dst, &buf[..n]) {
                                Ok(frame) => {
                                    self.queues[node].borrow_mut().push_back(BpRx {
                                        rail: rail as u32,
                                        at_ns: now,
                                        frame,
                                    });
                                    self.delivered.set(self.delivered.get() + 1);
                                }
                                Err(err @ CodecError::Checksum { .. }) => {
                                    self.corrupt_dropped
                                        .set(self.corrupt_dropped.get() + 1);
                                    self.flight.borrow().note(
                                        FlightCode::FrameCorrupt,
                                        node,
                                        None,
                                        Some(rail as u32),
                                        0,
                                        0,
                                        now,
                                    );
                                    self.push_rx_error(UdpRxError::Corrupt { node, rail, err });
                                }
                                Err(err) => {
                                    self.malformed_dropped
                                        .set(self.malformed_dropped.get() + 1);
                                    self.push_rx_error(UdpRxError::Malformed {
                                        node,
                                        rail,
                                        err,
                                    });
                                }
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        // Treat transient socket errors like a dropped
                        // frame; the protocol recovers via NACK/RTO.
                        Err(_) => break,
                    }
                }
            }
        }
    }

    fn send(&self, node: usize, rail: usize, frame: &Frame) -> bool {
        let mut scratch = self.scratch.borrow_mut();
        encode_frame_into(frame, &mut scratch);
        // A failed send (full socket buffer) is a transmit-queue overflow:
        // the frame is lost and recovered by the reliability machinery.
        self.sockets[node][rail]
            .send_to(&scratch, self.peer_addrs[node][rail])
            .is_ok()
    }
}

/// One node's view of a [`UdpFabric`].
pub struct UdpBackplane {
    fabric: Rc<UdpFabric>,
    node: usize,
}

impl UdpBackplane {
    /// The shared fabric (stats, error log, injection hooks).
    pub fn fabric(&self) -> &Rc<UdpFabric> {
        &self.fabric
    }
}

impl Backplane for UdpBackplane {
    fn rails(&self) -> usize {
        self.fabric.rails()
    }

    fn mtu(&self) -> usize {
        frame::MAX_PAYLOAD
    }

    fn peer_mtu(&self) -> usize {
        // Loopback: both ends speak the same datagram budget.
        frame::MAX_PAYLOAD
    }

    fn local_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new(self.node as u16, rail as u8)
    }

    fn peer_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new((1 - self.node) as u16, rail as u8)
    }

    fn now_ns(&self) -> u64 {
        self.fabric.now_ns()
    }

    fn send(&mut self, rail: usize, frame: Frame) -> bool {
        self.fabric.send(self.node, rail, &frame)
    }

    fn next(&mut self) -> Option<BpRx> {
        let head = self.fabric.queues[self.node].borrow_mut().pop_front();
        if head.is_some() {
            return head;
        }
        // Nothing queued: opportunistically drain the sockets so a caller
        // that never calls `advance` still sees traffic.
        self.fabric.poll_all();
        self.fabric.queues[self.node].borrow_mut().pop_front()
    }

    fn tx_backlog_ns(&self, _rail: usize) -> u64 {
        // The kernel socket buffer is opaque; report an idle queue.
        0
    }

    fn advance(&mut self, until_ns: u64) -> u64 {
        let base = self.fabric.delivered.get();
        let cfg = self.fabric.cfg;
        let mut spins = 0u32;
        loop {
            self.fabric.poll_all();
            if self.fabric.delivered.get() != base {
                return self.fabric.now_ns();
            }
            let now = self.fabric.now_ns();
            if now >= until_ns {
                return now;
            }
            // Graduated backoff: loopback latencies are microseconds, so
            // spin first; then yield; then — waiting out a long deadline
            // (delayed acks, a backed-off RTO during a blackout) — sleep in
            // bounded slices instead of burning the core.
            spins = spins.saturating_add(1);
            if spins < cfg.spin_before_yield {
                std::hint::spin_loop();
            } else if spins < cfg.spin_before_yield.saturating_add(cfg.yields_before_sleep) {
                std::thread::yield_now();
            } else {
                let remaining = Duration::from_nanos(until_ns - now);
                std::thread::sleep(cfg.idle_sleep.min(remaining));
            }
        }
    }
}
