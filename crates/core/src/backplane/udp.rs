//! The real-socket implementation of the [`Backplane`] trait: one
//! non-blocking UDP socket per rail, cross-connected over loopback.
//!
//! A [`UdpFabric`] owns **all** sockets of a two-node fabric — `2 × rails`
//! of them — so that a single-threaded poll loop can drive both endpoints:
//! [`Backplane::advance`] on either node drains every socket into per-node
//! receive queues and returns as soon as anything arrived anywhere, exactly
//! mirroring the simulated fabric's early-stop semantics.
//!
//! Frames cross the sockets in the MultiEdge wire format
//! ([`frame::encode_frame_into`] / [`frame::decode_frame`]); each datagram
//! is one frame. The Ethernet MAC addresses are not carried on the wire —
//! a datagram arriving on node `n`'s rail-`r` socket can only have come
//! from the peer's rail-`r` socket, so the addresses are reconstructed from
//! (node, rail) exactly as a NIC would fill them in. Datagrams that fail to
//! decode (truncated, bad checksum) are counted and dropped, the role the
//! Ethernet FCS plays on a real wire.
//!
//! The clock is wall time: nanoseconds since the fabric was created. All
//! protocol deadlines therefore run on real time here, which is the whole
//! point — the cross-validation bench compares phase attributions measured
//! on this clock against the simulator's virtual clock (see
//! `docs/BACKPLANE.md`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::UdpSocket;
use std::rc::Rc;
use std::time::Instant;

use frame::{decode_frame, encode_frame_into, Frame, MacAddr};

use super::{Backplane, BpRx};

/// Largest encoded frame: header + max payload (fits any MultiEdge frame).
const DATAGRAM_BUF: usize = frame::HEADER_LEN + frame::MAX_PAYLOAD;

/// All sockets of one two-node loopback fabric (see module docs).
pub struct UdpFabric {
    /// `sockets[node][rail]`, each connected to `sockets[1-node][rail]`.
    sockets: Vec<Vec<UdpSocket>>,
    /// Per-node receive queues fed by [`UdpFabric::poll_all`].
    queues: [RefCell<VecDeque<BpRx>>; 2],
    /// Wall-clock epoch: `now_ns` is elapsed time since this instant.
    epoch: Instant,
    /// Total datagrams delivered (the advance early-stop signal).
    delivered: Cell<u64>,
    /// Datagrams that failed to decode and were dropped.
    decode_dropped: Cell<u64>,
    /// Reusable receive buffer.
    buf: RefCell<Box<[u8]>>,
    /// Reusable encode scratch.
    scratch: RefCell<Vec<u8>>,
}

impl UdpFabric {
    /// Bind and cross-connect `2 × rails` loopback sockets.
    ///
    /// # Errors
    ///
    /// Returns any socket `bind`/`connect`/configuration error verbatim.
    pub fn new(rails: usize) -> std::io::Result<Rc<UdpFabric>> {
        assert!(rails >= 1, "a fabric needs at least one rail");
        let mut sockets: Vec<Vec<UdpSocket>> = Vec::with_capacity(2);
        for _node in 0..2 {
            let mut per_rail = Vec::with_capacity(rails);
            for _rail in 0..rails {
                let s = UdpSocket::bind("127.0.0.1:0")?;
                s.set_nonblocking(true)?;
                per_rail.push(s);
            }
            sockets.push(per_rail);
        }
        let (node0, node1) = (&sockets[0], &sockets[1]);
        for (sa, sb) in node0.iter().zip(node1.iter()) {
            let a = sa.local_addr()?;
            let b = sb.local_addr()?;
            sa.connect(b)?;
            sb.connect(a)?;
        }
        Ok(Rc::new(UdpFabric {
            sockets,
            queues: [RefCell::default(), RefCell::default()],
            epoch: Instant::now(),
            delivered: Cell::new(0),
            decode_dropped: Cell::new(0),
            buf: RefCell::new(vec![0u8; DATAGRAM_BUF].into_boxed_slice()),
            scratch: RefCell::new(Vec::with_capacity(DATAGRAM_BUF)),
        }))
    }

    /// Both nodes' backplane views of this fabric.
    pub fn pair(self: &Rc<Self>) -> (UdpBackplane, UdpBackplane) {
        (
            UdpBackplane {
                fabric: self.clone(),
                node: 0,
            },
            UdpBackplane {
                fabric: self.clone(),
                node: 1,
            },
        )
    }

    /// Datagrams that failed to decode and were dropped (the FCS stand-in).
    pub fn decode_dropped(&self) -> u64 {
        self.decode_dropped.get()
    }

    fn rails(&self) -> usize {
        self.sockets[0].len()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Drain every socket of both nodes into the per-node queues.
    fn poll_all(&self) {
        let now = self.now_ns();
        let mut buf = self.buf.borrow_mut();
        for node in 0..2 {
            for (rail, sock) in self.sockets[node].iter().enumerate() {
                loop {
                    match sock.recv(&mut buf[..]) {
                        Ok(n) => {
                            let src = MacAddr::new((1 - node) as u16, rail as u8);
                            let dst = MacAddr::new(node as u16, rail as u8);
                            match decode_frame(src, dst, &buf[..n]) {
                                Ok(frame) => {
                                    self.queues[node].borrow_mut().push_back(BpRx {
                                        rail: rail as u32,
                                        at_ns: now,
                                        frame,
                                    });
                                    self.delivered.set(self.delivered.get() + 1);
                                }
                                Err(_) => {
                                    self.decode_dropped.set(self.decode_dropped.get() + 1);
                                }
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        // Treat transient socket errors like a dropped
                        // frame; the protocol recovers via NACK/RTO.
                        Err(_) => break,
                    }
                }
            }
        }
    }

    fn send(&self, node: usize, rail: usize, frame: &Frame) -> bool {
        let mut scratch = self.scratch.borrow_mut();
        encode_frame_into(frame, &mut scratch);
        // A failed send (full socket buffer) is a transmit-queue overflow:
        // the frame is lost and recovered by the reliability machinery.
        self.sockets[node][rail].send(&scratch).is_ok()
    }
}

/// One node's view of a [`UdpFabric`].
pub struct UdpBackplane {
    fabric: Rc<UdpFabric>,
    node: usize,
}

impl Backplane for UdpBackplane {
    fn rails(&self) -> usize {
        self.fabric.rails()
    }

    fn mtu(&self) -> usize {
        frame::MAX_PAYLOAD
    }

    fn peer_mtu(&self) -> usize {
        // Loopback: both ends speak the same datagram budget.
        frame::MAX_PAYLOAD
    }

    fn local_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new(self.node as u16, rail as u8)
    }

    fn peer_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new((1 - self.node) as u16, rail as u8)
    }

    fn now_ns(&self) -> u64 {
        self.fabric.now_ns()
    }

    fn send(&mut self, rail: usize, frame: Frame) -> bool {
        self.fabric.send(self.node, rail, &frame)
    }

    fn next(&mut self) -> Option<BpRx> {
        let head = self.fabric.queues[self.node].borrow_mut().pop_front();
        if head.is_some() {
            return head;
        }
        // Nothing queued: opportunistically drain the sockets so a caller
        // that never calls `advance` still sees traffic.
        self.fabric.poll_all();
        self.fabric.queues[self.node].borrow_mut().pop_front()
    }

    fn tx_backlog_ns(&self, _rail: usize) -> u64 {
        // The kernel socket buffer is opaque; report an idle queue.
        0
    }

    fn advance(&mut self, until_ns: u64) -> u64 {
        let base = self.fabric.delivered.get();
        let mut spins = 0u32;
        loop {
            self.fabric.poll_all();
            if self.fabric.delivered.get() != base {
                return self.fabric.now_ns();
            }
            let now = self.fabric.now_ns();
            if now >= until_ns {
                return now;
            }
            // Busy-wait with backoff: loopback latencies are microseconds,
            // so spin first, then yield the core while waiting out longer
            // deadlines (delayed acks, RTO).
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}
