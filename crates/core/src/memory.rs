//! Per-process virtual address space.
//!
//! MultiEdge's API lets a remote node read or write *any* virtual address of
//! the local process, with no pre-registered receive buffers (§2.2): the
//! kernel thread copies incoming data straight into the application's address
//! space. [`AppMemory`] models that address space as a sparse page table;
//! pages materialize (zero-filled, like anonymous mmap) on first touch.

use std::collections::HashMap;

/// Page size of the simulated address space (x86-64's 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Sparse byte-addressable virtual address space.
#[derive(Default)]
pub struct AppMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl AppMemory {
    /// Empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, page_no: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(page_no)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Write `data` starting at virtual address `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page_no = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            self.page_mut(page_no)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Read `buf.len()` bytes starting at `addr` into `buf`. Untouched
    /// addresses read as zero.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page_no = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.pages.get(&page_no) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Read `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Number of materialized pages (footprint accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_write_is_zero() {
        let m = AppMemory::new();
        assert_eq!(m.read_vec(0x1234, 8), vec![0u8; 8]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = AppMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(0xabc0, &data);
        assert_eq!(m.read_vec(0xabc0, 256), data);
    }

    #[test]
    fn spans_page_boundaries() {
        let mut m = AppMemory::new();
        let addr = (PAGE_SIZE as u64) * 3 - 100;
        let data: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        m.write(addr, &data);
        assert_eq!(m.read_vec(addr, 300), data);
        assert_eq!(m.resident_pages(), 2);
        // Neighbouring bytes untouched.
        assert_eq!(m.read_vec(addr - 4, 4), vec![0u8; 4]);
        assert_eq!(m.read_vec(addr + 300, 4), vec![0u8; 4]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut m = AppMemory::new();
        m.write(10, &[1; 16]);
        m.write(14, &[2; 4]);
        let v = m.read_vec(10, 16);
        assert_eq!(&v[..4], &[1; 4]);
        assert_eq!(&v[4..8], &[2; 4]);
        assert_eq!(&v[8..], &[1; 8]);
    }

    #[test]
    fn large_sparse_addresses() {
        let mut m = AppMemory::new();
        let addr = 1u64 << 60; // page-aligned, far from anything else
        m.write(addr, &[7, 8, 9]);
        assert_eq!(m.read_vec(addr, 3), vec![7, 8, 9]);
        assert_eq!(m.resident_pages(), 1);
    }
}
