//! Protocol configuration, host cost model, and the paper's system setups.

use netsim::time::{us_f64, Dur};
use netsim::{ChannelParams, FaultModel};

/// Flow-control / reliability parameters (§2.4 of the paper).
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Sliding-window size in frames (fixed at "compile time" in the paper;
    /// a config knob here so the window-sweep ablation can vary it).
    pub window: u64,
    /// Send an explicit ACK after this many unacknowledged data frames.
    pub ack_every: u32,
    /// ... or after this much time with acknowledgement state pending.
    pub delayed_ack_timeout: Dur,
    /// How long an observed sequence gap may persist before a NACK is sent.
    /// Covers multi-link skew: frames arriving out of order but closely
    /// spaced must not trigger spurious retransmissions.
    pub nack_delay: Dur,
    /// Minimum spacing between NACKs for the same missing range.
    pub nack_repeat: Dur,
    /// Initial coarse-grain retransmission timeout, used until the adaptive
    /// RFC 6298-style estimator ([`crate::rtt::RttEstimator`]) has its first
    /// RTT sample. If no acknowledgement progress happens for the current
    /// (adaptive, backed-off) timeout while frames are unacknowledged, the
    /// last transmitted frame is retransmitted (§2.4).
    pub rto_initial: Dur,
    /// Lower clamp on the adaptive retransmission timeout. Keep above the
    /// NACK delay so ordinary multi-rail skew is always recovered by the
    /// cheaper NACK path first.
    pub rto_min: Dur,
    /// Upper clamp on the adaptive timeout after exponential backoff.
    pub rto_max: Dur,
    /// Consecutive losses attributed to one rail after which it is marked
    /// *degraded* (visible in health state; still striped onto).
    pub rail_degraded_after: u32,
    /// Consecutive attributed losses after which a rail is declared *dead*
    /// and excluded from striping until a re-admission probe succeeds.
    pub rail_dead_after: u32,
    /// How long a dead rail sits out before one probe frame may test it for
    /// re-admission.
    pub rail_cooldown: Dur,
    /// RTO backoff exponent at which the endpoint is treated as facing an
    /// unreachable peer: the wire driver's watchdog reports
    /// `WireError::PeerUnreachable` once backoff reaches this value, and
    /// the flight recorder notes every backoff on the way there. Keeps a
    /// dead-peer retransmit storm bounded to `rto_storm_cap` doublings.
    pub rto_storm_cap: u32,
    /// Most frames one NACK may trigger retransmissions for. Gaps beyond
    /// the cap are recovered by the receiver's repeated NACKs
    /// (`nack_repeat` pacing), so a single control frame can never unleash
    /// a full-window retransmit burst onto an already-lossy fabric.
    pub nack_resend_burst: u32,
    /// Force both fences on every operation (the paper's strictly-ordered
    /// 2L mode, as opposed to the relaxed 2Lu mode).
    pub force_ordered: bool,
    /// Maximum payload bytes per frame.
    pub max_payload: usize,
    /// Link-scheduling policy for spatial parallelism (§2.5; the paper uses
    /// round-robin — alternatives exist for the scheduling ablation).
    pub sched: crate::sched::SchedPolicy,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        Self {
            // Far above the per-stream bandwidth-delay product (~3 frames
            // at 1 GbE) but small enough that many-to-one application
            // traffic cannot swamp a switch output buffer.
            window: 64,
            ack_every: 24,
            delayed_ack_timeout: us_f64(300.0),
            // Above the worst-case multi-rail skew (≈ window/rails × frame
            // time ≈ 1.6 ms at 1 GbE), so skew never masquerades as loss,
            // yet far below the 10 ms coarse timeout.
            nack_delay: us_f64(2_000.0),
            nack_repeat: us_f64(4_000.0),
            rto_initial: netsim::time::ms(10),
            rto_min: netsim::time::ms(2),
            rto_max: netsim::time::ms(100),
            rail_degraded_after: 3,
            rail_dead_after: 8,
            rail_cooldown: netsim::time::ms(20),
            // 10 doublings from rto_min is ≈ 2 s of silence at the default
            // clamps — far past any recoverable loss pattern.
            rto_storm_cap: 10,
            // Half the default window: one NACK recovers a burst loss in
            // two paced rounds instead of one unbounded salvo.
            nack_resend_burst: 32,
            force_ordered: false,
            max_payload: frame::MAX_PAYLOAD,
            sched: crate::sched::SchedPolicy::RoundRobin,
        }
    }
}

/// Calibrated host-side costs of the kernel data path (§2.3).
///
/// Defaults are tuned so the micro-benchmarks land on the paper's headline
/// numbers (≈120 MB/s on 1L-1G, ≈240 MB/s on 2L-1G, ≈1100 MB/s on 1L-10G,
/// ≈30 µs minimum ping-pong latency, ≈2 µs host overhead per operation).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Entering/leaving the kernel for one operation.
    pub syscall: Dur,
    /// User↔kernel copy bandwidth in bytes/s (both send and receive copies).
    pub copy_bytes_per_sec: f64,
    /// Building one Ethernet + MultiEdge header.
    pub frame_build: Dur,
    /// Posting one DMA descriptor.
    pub dma_post: Dur,
    /// Interrupt entry + handler prologue.
    pub interrupt: Dur,
    /// Waking the protocol kernel thread after an interrupt.
    pub kthread_wake: Dur,
    /// Per-frame receive-path protocol work (header parse, window update).
    pub rx_frame_proc: Dur,
    /// Per-frame transmit-completion processing (freeing send buffers).
    pub tx_complete_proc: Dur,
    /// Waking a user task blocked on a handle or notification.
    pub app_wake: Dur,
    /// NIC interrupt moderation (the Tigon3/Myricom `rx-usecs` timer): when
    /// the protocol thread is idle, a newly arrived event arms a hardware
    /// timer and the interrupt fires only after this delay, batching
    /// everything that arrived meanwhile.
    pub rx_irq_delay: Dur,
    /// NIC interrupt moderation frame cap (`rx-frames`): the interrupt
    /// fires early once this many events are pending.
    pub rx_irq_frames: usize,
    /// The 10-GbE NIC cannot mask send-completion interrupts (§4): when
    /// true, an additional per-frame tax is charged on the send path,
    /// modeling the sender-side overhead the paper measured.
    pub unmaskable_tx_irq: bool,
    /// Extra per-frame send-path cost when `unmaskable_tx_irq` (models the
    /// sender-side overhead the paper blames for the missing 12% at 10 Gbit).
    pub tx_irq_send_tax: Dur,

}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            syscall: us_f64(0.7),
            copy_bytes_per_sec: 2.6e9,
            frame_build: us_f64(0.25),
            dma_post: us_f64(0.3),
            interrupt: us_f64(2.0),
            kthread_wake: us_f64(1.5),
            rx_frame_proc: us_f64(0.6),
            tx_complete_proc: us_f64(0.2),
            app_wake: us_f64(1.0),
            rx_irq_delay: us_f64(16.0),
            rx_irq_frames: 8,
            unmaskable_tx_irq: false,
            tx_irq_send_tax: us_f64(0.2),
        }
    }
}

impl CostModel {
    /// Cost model for the Myricom 10-GbE NIC (send-path interrupts on).
    pub fn gbe_10() -> Self {
        Self {
            unmaskable_tx_irq: true,
            ..Self::default()
        }
    }

    /// Time to copy `bytes` between user and kernel space.
    pub fn copy_cost(&self, bytes: usize) -> Dur {
        Dur::for_bytes(bytes, self.copy_bytes_per_sec)
    }
}

/// A complete experimental setup: cluster shape + link + costs + protocol.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Short name used in reports ("1L-1G", "2L-1G", "2Lu-1G", "1L-10G").
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of rails (links per connection).
    pub rails: usize,
    /// Link parameters.
    pub link: ChannelParams,
    /// Per-frame switch forwarding delay.
    pub switch_delay: Dur,
    /// Transient-fault model.
    pub fault: FaultModel,
    /// Host cost model.
    pub cost: CostModel,
    /// Protocol parameters.
    pub proto: ProtoConfig,
    /// RNG seed for the run.
    pub seed: u64,
    /// Event-trace ring capacity. `0` (the default everywhere) disables
    /// tracing entirely: every instrumentation point in the endpoint and
    /// the simulator collapses to a single branch. A non-zero value makes
    /// each [`crate::Endpoint`] record the latest that many typed protocol
    /// events plus latency histograms (see the `me-trace` crate).
    pub trace_ring: usize,
    /// Completed-span ring capacity for causal op spans. `0` (the default)
    /// disables the span layer; a non-zero value makes every endpoint in
    /// the cluster stamp per-op milestones into one shared
    /// [`me_trace::SpanRecorder`], retaining the latest that many completed
    /// spans for critical-path attribution.
    pub spans: usize,
    /// Always-on flight recorder. `None` (the default) disables it; `Some`
    /// arms a shared bounded event ring with trigger-based post-mortem
    /// dumps (see [`me_trace::FlightConfig`]).
    pub flight: Option<me_trace::FlightConfig>,
}

impl SystemConfig {
    fn base(name: &str, nodes: usize, rails: usize, link: ChannelParams, cost: CostModel) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            rails,
            link,
            switch_delay: us_f64(1.0),
            fault: FaultModel::default(),
            cost,
            proto: ProtoConfig::default(),
            seed: 1,
            trace_ring: 0,
            spans: 0,
            flight: None,
        }
    }

    /// Enable protocol-event tracing with a ring of `capacity` events.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_ring = capacity;
        self
    }

    /// Enable causal op spans, retaining the latest `capacity` completed
    /// spans for attribution.
    pub fn with_spans(mut self, capacity: usize) -> Self {
        self.spans = capacity;
        self
    }

    /// Arm the always-on flight recorder.
    pub fn with_flight(mut self, cfg: me_trace::FlightConfig) -> Self {
        self.flight = Some(cfg);
        self
    }

    /// The paper's **1L-1G**: one 1-GbE rail.
    pub fn one_link_1g(nodes: usize) -> Self {
        Self::base("1L-1G", nodes, 1, ChannelParams::gbe_1(), CostModel::default())
    }

    /// The paper's **2L-1G**: two 1-GbE rails, strictly ordered delivery.
    pub fn two_link_1g(nodes: usize) -> Self {
        let mut c = Self::base("2L-1G", nodes, 2, ChannelParams::gbe_1(), CostModel::default());
        c.proto.force_ordered = true;
        c
    }

    /// The paper's **2Lu-1G**: two 1-GbE rails, out-of-order delivery
    /// allowed wherever the application does not fence.
    pub fn two_link_1g_unordered(nodes: usize) -> Self {
        let mut c = Self::base("2Lu-1G", nodes, 2, ChannelParams::gbe_1(), CostModel::default());
        c.name = "2Lu-1G".to_string();
        c
    }

    /// The paper's **1L-10G**: one 10-GbE rail.
    pub fn one_link_10g(nodes: usize) -> Self {
        Self::base("1L-10G", nodes, 1, ChannelParams::gbe_10(), CostModel::gbe_10())
    }

    /// The paper's **4L-1G**: four 1-GbE rails, out-of-order delivery
    /// allowed wherever the application does not fence.
    pub fn four_link_1g(nodes: usize) -> Self {
        Self::base("4L-1G", nodes, 4, ChannelParams::gbe_1(), CostModel::default())
    }

    /// Nominal unidirectional link payload ceiling in MB/s (all rails),
    /// i.e. the figure the paper calls "nominal link throughput".
    pub fn nominal_mb_s(&self) -> f64 {
        self.link.bytes_per_sec * self.rails as f64 / 1e6
    }

    /// The netsim cluster spec for this configuration. The network's fault
    /// RNG seed is derived deterministically from [`Self::seed`], so the
    /// same config seed reproduces the same loss/corruption/burst pattern.
    pub fn cluster_spec(&self) -> netsim::ClusterSpec {
        netsim::ClusterSpec {
            nodes: self.nodes,
            rails: self.rails,
            link: self.link,
            switch_delay: self.switch_delay,
            fault: self.fault,
            fault_seed: self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA17,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_setups() {
        let a = SystemConfig::one_link_1g(16);
        assert_eq!((a.nodes, a.rails), (16, 1));
        assert!((a.nominal_mb_s() - 125.0).abs() < 1e-9);

        let b = SystemConfig::two_link_1g(16);
        assert_eq!(b.rails, 2);
        assert!(b.proto.force_ordered);
        assert!((b.nominal_mb_s() - 250.0).abs() < 1e-9);

        let bu = SystemConfig::two_link_1g_unordered(16);
        assert!(!bu.proto.force_ordered);

        let c = SystemConfig::one_link_10g(4);
        assert_eq!((c.nodes, c.rails), (4, 1));
        assert!(c.cost.unmaskable_tx_irq);
        assert!((c.nominal_mb_s() - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let cm = CostModel::default();
        assert_eq!(cm.copy_cost(0), Dur::ZERO);
        let c1 = cm.copy_cost(4096);
        let c2 = cm.copy_cost(8192);
        assert!(c2.as_nanos() >= 2 * c1.as_nanos() - 2);
        assert!(c2.as_nanos() <= 2 * c1.as_nanos() + 2);
    }
}
