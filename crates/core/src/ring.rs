//! Window-ring state for the allocation-free datapath.
//!
//! The sliding window bounds how much per-frame bookkeeping can be live at
//! once: a sender never has more than `window` unacknowledged frames per
//! direction, and a receiver's gap starts all lie inside the span the sender
//! may have put on the wire. Both invariants make a fixed-size array indexed
//! by `seq mod capacity` (capacity = the window rounded up to a power of
//! two) a drop-in replacement for the seq-keyed maps the hot path used to
//! carry — every insert, lookup and removal is O(1) with **zero
//! steady-state allocation**, where the `BTreeMap`/`HashMap` versions paid
//! a node or bucket allocation per frame.
//!
//! Each slot is tagged with the full 64-bit sequence that owns it, so a
//! stale lookup (a NACK for an already-acked frame, a gap start that has
//! since been received) misses cleanly instead of aliasing a newer frame
//! that hashes to the same slot.
//!
//! * [`TxRing`] — the sender's in-flight frames `[acked, sent_up_to)`:
//!   the retransmission buffer fused with the per-frame transmission
//!   bookkeeping (rail, send time, Karn retransmission mark).
//! * [`GapRing`] — the receiver's NACK-dedup state, keyed by gap start:
//!   when the gap was first observed and when it was last NACKed, purged
//!   below the cumulative ack so its live size is window-bounded.
//!
//! `docs/PERFORMANCE.md` describes how these rings fit into the datapath
//! benchmark's zero-allocation budget.

use frame::Frame;
use netsim::SimTime;

/// One in-flight frame: the retransmission copy plus the transmission
/// bookkeeping that used to live in separate seq-keyed maps.
#[derive(Debug, Clone)]
pub struct TxSlot {
    /// Sequence number that owns this slot (the slot tag).
    pub seq: u64,
    /// Rail that carried the latest copy.
    pub rail: usize,
    /// When the latest copy was transmitted.
    pub sent_at: SimTime,
    /// Whether any copy was a retransmission (Karn's algorithm forbids RTT
    /// samples from such frames).
    pub retransmitted: bool,
    /// The built frame, retained for retransmission until acknowledged.
    pub frame: Frame,
}

/// Fixed-size ring of in-flight frames, indexed by `seq mod capacity`.
///
/// Holds exactly the window `[acked, sent_up_to)`; the window invariant
/// guarantees distinct live sequences never collide.
#[derive(Debug)]
pub struct TxRing {
    slots: Vec<Option<TxSlot>>,
    mask: u64,
    len: usize,
}

impl TxRing {
    /// Ring sized so `window` in-flight frames never collide.
    pub fn with_window(window: usize) -> Self {
        let cap = window.max(1).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| None).collect(),
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    /// Slot count (a power of two, ≥ the window).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no frame is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn idx(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// Insert a frame's slot. The window invariant means the target slot
    /// must be free; a collision is a protocol bug, not an eviction.
    ///
    /// # Panics
    ///
    /// Panics if the slot is still occupied (window overrun).
    pub fn insert(&mut self, slot: TxSlot) {
        let i = self.idx(slot.seq);
        assert!(
            self.slots[i].is_none(),
            "TxRing slot collision: seq {} vs live seq {} (window overrun)",
            slot.seq,
            self.slots[i].as_ref().map_or(0, |s| s.seq),
        );
        self.slots[i] = Some(slot);
        self.len += 1;
    }

    /// The slot owned by `seq`, if it is still in flight.
    pub fn get(&self, seq: u64) -> Option<&TxSlot> {
        self.slots[self.idx(seq)]
            .as_ref()
            .filter(|s| s.seq == seq)
    }

    /// Mutable access to the slot owned by `seq`.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut TxSlot> {
        let i = self.idx(seq);
        self.slots[i].as_mut().filter(|s| s.seq == seq)
    }

    /// True if `seq` is still in flight.
    pub fn contains(&self, seq: u64) -> bool {
        self.get(seq).is_some()
    }

    /// Remove and return `seq`'s slot (on cumulative-ack advance).
    pub fn remove(&mut self, seq: u64) -> Option<TxSlot> {
        let i = self.idx(seq);
        if self.slots[i].as_ref().is_some_and(|s| s.seq == seq) {
            self.len -= 1;
            self.slots[i].take()
        } else {
            None
        }
    }
}

/// NACK-dedup state for one gap: when it appeared and when it was last
/// reported, so the delayed-NACK policy (paper §2.4) can age and pace gaps
/// without a per-gap map entry.
#[derive(Debug, Clone, Copy)]
pub struct GapSlot {
    /// Gap-start sequence that owns this slot (the slot tag).
    pub seq: u64,
    /// When the NACK check first observed this gap.
    pub first_seen: SimTime,
    /// When this gap was last NACKed (`None` until the first NACK).
    pub last_nack: Option<SimTime>,
}

/// Fixed-size ring of per-gap NACK state, keyed by gap-start sequence.
///
/// Gap starts always lie in `[cumulative, cumulative + window)`, so with a
/// capacity of at least the window, distinct live gap starts never collide;
/// [`GapRing::purge_below`] retires slots the cumulative ack has passed,
/// which keeps the live count window-bounded (the regression the old
/// map-based code had to `retain()` against on every timer fire).
#[derive(Debug)]
pub struct GapRing {
    slots: Vec<Option<GapSlot>>,
    mask: u64,
    len: usize,
}

impl GapRing {
    /// Ring sized so `window` live gap starts never collide.
    pub fn with_window(window: usize) -> Self {
        let cap = window.max(1).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| None).collect(),
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    /// Slot count (a power of two, ≥ the window).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Gap entries currently live.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no gap entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry for gap start `seq`, creating it (first seen `now`) if this
    /// gap has not been tracked yet — the ring analogue of
    /// `map.entry(seq).or_insert(now)`.
    pub fn entry(&mut self, seq: u64, now: SimTime) -> &mut GapSlot {
        let i = (seq & self.mask) as usize;
        if self.slots[i].as_ref().is_none_or(|g| g.seq != seq) {
            if self.slots[i].is_none() {
                self.len += 1;
            }
            self.slots[i] = Some(GapSlot {
                seq,
                first_seen: now,
                last_nack: None,
            });
        }
        self.slots[i].as_mut().expect("just ensured occupied")
    }

    /// The entry for gap start `seq`, if tracked.
    pub fn get(&self, seq: u64) -> Option<&GapSlot> {
        self.slots[(seq & self.mask) as usize]
            .as_ref()
            .filter(|g| g.seq == seq)
    }

    /// Retire every entry whose gap start the cumulative ack has passed.
    /// O(capacity), run per NACK-timer fire (not per frame).
    pub fn purge_below(&mut self, cumulative: u64) {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|g| g.seq < cumulative) {
                *slot = None;
                self.len -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use frame::{FrameHeader, MacAddr};

    fn frame(seq: u64) -> Frame {
        Frame {
            src: MacAddr::new(0, 0),
            dst: MacAddr::new(1, 0),
            header: FrameHeader {
                seq: seq as u32,
                ..FrameHeader::default()
            },
            payload: Bytes::new(),
        }
    }

    fn tx_slot(seq: u64) -> TxSlot {
        TxSlot {
            seq,
            rail: 0,
            sent_at: SimTime::ZERO,
            retransmitted: false,
            frame: frame(seq),
        }
    }

    #[test]
    fn tx_round_trip_and_tag_check() {
        let mut r = TxRing::with_window(64);
        assert_eq!(r.capacity(), 64);
        for seq in 0..64u64 {
            r.insert(tx_slot(seq));
        }
        assert_eq!(r.len(), 64);
        assert!(r.contains(0));
        assert!(r.contains(63));
        // A stale seq that aliases slot 0 must miss on the tag.
        assert!(!r.contains(64));
        assert!(r.get(128).is_none());
        let s = r.remove(0).expect("live");
        assert_eq!(s.seq, 0);
        assert!(!r.contains(0));
        assert!(r.remove(0).is_none(), "double remove misses");
        // Slot 0 freed: the next window lap may claim it.
        r.insert(tx_slot(64));
        assert_eq!(r.get(64).map(|s| s.seq), Some(64));
    }

    #[test]
    fn tx_get_mut_updates_in_place() {
        let mut r = TxRing::with_window(8);
        r.insert(tx_slot(3));
        let s = r.get_mut(3).expect("live");
        s.rail = 2;
        s.retransmitted = true;
        assert_eq!(r.get(3).map(|s| (s.rail, s.retransmitted)), Some((2, true)));
        assert!(r.get_mut(3 + 8).is_none(), "aliasing seq misses on tag");
    }

    #[test]
    #[should_panic(expected = "window overrun")]
    fn tx_collision_panics() {
        let mut r = TxRing::with_window(4);
        r.insert(tx_slot(1));
        r.insert(tx_slot(5)); // 5 mod 4 == 1 while 1 is still live
    }

    #[test]
    fn tx_capacity_rounds_up() {
        assert_eq!(TxRing::with_window(5).capacity(), 8);
        assert_eq!(TxRing::with_window(1).capacity(), 1);
        assert_eq!(TxRing::with_window(64).capacity(), 64);
    }

    #[test]
    fn gap_entry_is_or_insert() {
        let mut g = GapRing::with_window(64);
        let t0 = SimTime::ZERO;
        let t1 = t0 + netsim::time::us(5);
        let e = g.entry(7, t0);
        assert_eq!(e.first_seen, t0);
        assert_eq!(e.last_nack, None);
        e.last_nack = Some(t0);
        // Re-entry keeps the recorded state (or_insert semantics).
        let e = g.entry(7, t1);
        assert_eq!(e.first_seen, t0);
        assert_eq!(e.last_nack, Some(t0));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn gap_purge_below_retires_passed_gaps() {
        let mut g = GapRing::with_window(16);
        let now = SimTime::ZERO;
        for seq in [2u64, 5, 9] {
            g.entry(seq, now);
        }
        assert_eq!(g.len(), 3);
        g.purge_below(6);
        assert_eq!(g.len(), 1);
        assert!(g.get(2).is_none());
        assert!(g.get(5).is_none());
        assert!(g.get(9).is_some());
        // A purged start re-entering (can't happen live, but must be safe)
        // is treated as fresh.
        let later = now + netsim::time::us(1);
        assert_eq!(g.entry(5, later).first_seen, later);
    }

    #[test]
    fn gap_live_size_stays_window_bounded_under_churn() {
        // Lossy-soak shape: gaps appear ahead of the cumulative ack, the
        // ack advances, purge retires what it passed. Live size must track
        // the window, not total loss history.
        let mut g = GapRing::with_window(64);
        let now = SimTime::ZERO;
        let mut cumulative = 0u64;
        for round in 0..1000u64 {
            // Every 3rd sequence in the next window chunk is a gap start.
            for k in (0..64u64).step_by(3) {
                g.entry(cumulative + k, now);
            }
            cumulative += 64;
            g.purge_below(cumulative);
            assert!(
                g.len() <= 64,
                "round {round}: {} live gaps exceeds window",
                g.len()
            );
        }
        assert_eq!(g.len(), 0, "fully acked soak must end empty");
    }
}
