//! Byte-level striping baseline (the paper's foil, §1).
//!
//! Before decoupled spatial parallelism, multi-link systems sliced a single
//! data unit byte-wise across tightly-synchronized links: "A single data
//! unit sliced in bytes, is transmitted over multiple physical links that
//! are tightly controlled by the sender and the receiver. However, as the
//! number of links increases, it becomes difficult to control the links
//! tightly."
//!
//! [`ByteStriper`] models that scheme analytically: each data unit of `u`
//! bytes is split into `k` equal slices, one per link; the unit completes at
//! the *slowest* slice, and per-unit synchronization costs a fixed overhead
//! per link. Link-speed skew (e.g. one degraded rail) therefore stalls
//! everything, whereas MultiEdge's frame-level striping just sees that rail
//! deliver fewer frames. The `ablation_striping` bench compares the two.

use netsim::time::Dur;

/// Analytical model of tightly-coupled byte-level striping.
#[derive(Debug, Clone)]
pub struct ByteStriper {
    /// Per-link bandwidth in bytes/s.
    pub link_bytes_per_sec: Vec<f64>,
    /// Per-unit, per-link synchronization overhead (descriptor exchange,
    /// slice header, barrier between sender and receiver engines).
    pub sync_overhead: Dur,
    /// Byte overhead per slice (slice framing).
    pub per_slice_overhead: usize,
}

impl ByteStriper {
    /// `k` identical links of `bytes_per_sec` each.
    pub fn uniform(k: usize, bytes_per_sec: f64, sync_overhead: Dur) -> Self {
        Self {
            link_bytes_per_sec: vec![bytes_per_sec; k],
            sync_overhead,
            per_slice_overhead: 8,
        }
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.link_bytes_per_sec.len()
    }

    /// Time to transfer one `unit_bytes` data unit: slices finish in
    /// parallel, the unit completes at the slowest slice plus the
    /// synchronization overhead (charged once per unit, growing with the
    /// link count — the "tight control" cost).
    pub fn unit_time(&self, unit_bytes: usize) -> Dur {
        let k = self.links().max(1);
        let slice = unit_bytes.div_ceil(k) + self.per_slice_overhead;
        let slowest = self
            .link_bytes_per_sec
            .iter()
            .map(|&bw| Dur::for_bytes(slice, bw))
            .max()
            .unwrap_or(Dur::ZERO);
        slowest + self.sync_overhead * k as u64
    }

    /// Steady-state throughput in bytes/s for back-to-back units of
    /// `unit_bytes`.
    pub fn throughput(&self, unit_bytes: usize) -> f64 {
        let t = self.unit_time(unit_bytes);
        if t == Dur::ZERO {
            return 0.0;
        }
        unit_bytes as f64 / t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::us;

    #[test]
    fn uniform_links_split_evenly() {
        let s = ByteStriper::uniform(2, 125e6, Dur::ZERO);
        let one = ByteStriper::uniform(1, 125e6, Dur::ZERO);
        // Two links ≈ 2× the throughput of one when sync is free.
        let r2 = s.throughput(1_000_000);
        let r1 = one.throughput(1_000_000);
        assert!(r2 / r1 > 1.9 && r2 / r1 < 2.1, "got ratio {}", r2 / r1);
    }

    #[test]
    fn sync_overhead_erodes_scaling_with_link_count() {
        // With per-unit sync, going from 2 to 8 links on small units hurts.
        let unit = 4096;
        let t2 = ByteStriper::uniform(2, 125e6, us(2)).throughput(unit);
        let t8 = ByteStriper::uniform(8, 125e6, us(2)).throughput(unit);
        assert!(
            t8 < t2 * 2.0,
            "8 links should not be 4x better on small units: t2={t2} t8={t8}"
        );
    }

    #[test]
    fn skewed_link_stalls_the_unit() {
        // One link at 10% speed: the whole unit runs at the slow slice.
        let mut s = ByteStriper::uniform(4, 125e6, Dur::ZERO);
        s.link_bytes_per_sec[3] = 12.5e6;
        let healthy = ByteStriper::uniform(4, 125e6, Dur::ZERO);
        let ratio = s.throughput(100_000) / healthy.throughput(100_000);
        assert!(
            ratio < 0.15,
            "a 10% link should drag the unit to ~10%: ratio {ratio}"
        );
    }
}
