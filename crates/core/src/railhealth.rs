//! Per-rail health tracking for the striping scheduler.
//!
//! The paper stripes every connection across all rails round-robin; if one
//! rail goes dark, 1/k of all frames blackhole until the coarse timer
//! rescues them one at a time. This module gives the sender a per-rail
//! state machine fed by loss *attribution* (the endpoint remembers which
//! NIC sent every outstanding frame, so a NACK-triggered retransmit or an
//! RTO hit debits the rail that lost the frame, and an ACK credits it):
//!
//! ```text
//!            strikes ≥ degraded_after      strikes ≥ dead_after
//!  Healthy ─────────────────────► Degraded ─────────────────► Dead
//!     ▲                              │ ack                      │ cooldown
//!     │ ack                          ▼                          ▼ elapsed
//!     ◄──────────────────────────────┘                       Probing
//!     │                 probe frame acked                       │
//!     └─────────────────────────◄───────────────────────────────┤
//!                                        probe frame lost: back to Dead
//! ```
//!
//! *Healthy* and *Degraded* rails are striped onto normally (Degraded is a
//! warning state, visible to operators). A *Dead* rail is excluded from
//! striping; after `cooldown` it becomes *Probing* and exactly one in-band
//! data frame is allowed onto it. If that probe is acknowledged the rail
//! rejoins ([`RailEvent::Readmitted`]); if it is lost the rail returns to
//! *Dead* for a fresh cooldown. Connections therefore degrade from k rails
//! to k−1 and recover, instead of blackholing 1/k of their frames.

use netsim::time::{Dur, SimTime};

/// Health state of one rail, from the sending connection's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RailState {
    /// Full member of the striping rotation.
    Healthy,
    /// Accumulating attributed losses; still striped onto.
    Degraded,
    /// Excluded from striping, waiting out the cooldown.
    Dead,
    /// Cooldown elapsed: one probe frame may test the rail.
    Probing,
}

/// A state-machine transition the endpoint must surface (trace event +
/// stats counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RailEvent {
    /// The rail was declared dead and left the striping rotation.
    Dead(usize),
    /// The rail's probe was acknowledged; it rejoined the rotation.
    Readmitted(usize),
}

#[derive(Debug, Clone)]
struct RailHealth {
    state: RailState,
    /// Consecutive attributed losses since the last credited ack.
    strikes: u32,
    /// When the rail entered `Dead` (cooldown reference point).
    dead_since: SimTime,
    /// Sequence of the probe frame in flight, while `Probing`.
    probe_seq: Option<u64>,
}

impl RailHealth {
    fn new() -> Self {
        Self {
            state: RailState::Healthy,
            strikes: 0,
            dead_since: SimTime::ZERO,
            probe_seq: None,
        }
    }
}

/// Health tracker for all rails of one connection.
#[derive(Debug, Clone)]
pub struct RailSet {
    rails: Vec<RailHealth>,
    degraded_after: u32,
    dead_after: u32,
    cooldown: Dur,
}

impl RailSet {
    /// Tracker for `n` rails with the given thresholds (see
    /// [`crate::ProtoConfig::rail_degraded_after`] and friends).
    pub fn new(n: usize, degraded_after: u32, dead_after: u32, cooldown: Dur) -> Self {
        assert!(n <= 64, "rail mask is a u64");
        Self {
            rails: (0..n).map(|_| RailHealth::new()).collect(),
            degraded_after: degraded_after.max(1),
            dead_after: dead_after.max(2),
            cooldown,
        }
    }

    /// Current state of `rail`.
    pub fn state(&self, rail: usize) -> RailState {
        self.rails[rail].state
    }

    /// Number of rails tracked.
    pub fn len(&self) -> usize {
        self.rails.len()
    }

    /// True when no rails are tracked (never the case for a built
    /// connection; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.rails.is_empty()
    }

    /// A loss was attributed to `rail` (NACK-triggered retransmit or RTO
    /// hit of a frame it sent). Returns the transition to surface, if any.
    pub fn on_loss(&mut self, rail: usize, seq: u64, now: SimTime) -> Option<RailEvent> {
        let r = &mut self.rails[rail];
        r.strikes = r.strikes.saturating_add(1);
        match r.state {
            RailState::Probing if r.probe_seq == Some(seq) => {
                // The probe itself died: the rail is still dark.
                r.state = RailState::Dead;
                r.dead_since = now;
                r.probe_seq = None;
                None
            }
            RailState::Healthy | RailState::Degraded => {
                if r.strikes >= self.dead_after {
                    r.state = RailState::Dead;
                    r.dead_since = now;
                    r.probe_seq = None;
                    Some(RailEvent::Dead(rail))
                } else {
                    if r.strikes >= self.degraded_after {
                        r.state = RailState::Degraded;
                    }
                    None
                }
            }
            // Dead already, or a stale loss for a non-probe frame while
            // probing: nothing new to report.
            _ => None,
        }
    }

    /// A frame sent on `rail` was cumulatively acknowledged. Returns
    /// [`RailEvent::Readmitted`] when this was the probe that revives a
    /// dead rail.
    pub fn on_ack(&mut self, rail: usize, seq: u64) -> Option<RailEvent> {
        let r = &mut self.rails[rail];
        r.strikes = 0;
        match r.state {
            RailState::Probing if r.probe_seq == Some(seq) => {
                r.state = RailState::Healthy;
                r.probe_seq = None;
                Some(RailEvent::Readmitted(rail))
            }
            RailState::Healthy | RailState::Degraded => {
                r.state = RailState::Healthy;
                None
            }
            // An ack for a frame that raced the death sentence: ignore; the
            // rail re-earns trust through the probe path.
            _ => None,
        }
    }

    /// The striping scheduler is about to pick a rail at `now`: advance
    /// cooldowns and return the eligibility mask (bit r set = rail r may
    /// carry the next frame). Zero means *no* rail is currently eligible —
    /// the caller should fall back to striping over all rails rather than
    /// stall the connection.
    pub fn eligible_mask(&mut self, now: SimTime) -> u64 {
        let mut mask = 0u64;
        for (i, r) in self.rails.iter_mut().enumerate() {
            match r.state {
                RailState::Healthy | RailState::Degraded => mask |= 1 << i,
                RailState::Dead => {
                    if now.since(r.dead_since) >= self.cooldown {
                        r.state = RailState::Probing;
                        r.probe_seq = None;
                        mask |= 1 << i;
                    }
                }
                // One probe at a time: eligible only until it is in flight.
                RailState::Probing => {
                    if r.probe_seq.is_none() {
                        mask |= 1 << i;
                    }
                }
            }
        }
        mask
    }

    /// The scheduler put `seq` onto `rail`: if the rail is probing and has
    /// no probe in flight, this frame becomes the probe.
    pub fn note_sent(&mut self, rail: usize, seq: u64) {
        let r = &mut self.rails[rail];
        if r.state == RailState::Probing && r.probe_seq.is_none() {
            r.probe_seq = Some(seq);
        }
    }

    /// Number of rails currently in the striping rotation (healthy,
    /// degraded, or probing).
    pub fn active_rails(&self) -> usize {
        self.rails
            .iter()
            .filter(|r| r.state != RailState::Dead)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::ms;

    fn t(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    fn set2() -> RailSet {
        RailSet::new(2, 2, 4, ms(10))
    }

    #[test]
    fn strikes_walk_healthy_degraded_dead() {
        let mut s = set2();
        assert_eq!(s.on_loss(1, 10, t(0)), None);
        assert_eq!(s.state(1), RailState::Healthy);
        assert_eq!(s.on_loss(1, 11, t(0)), None);
        assert_eq!(s.state(1), RailState::Degraded);
        assert_eq!(s.on_loss(1, 12, t(0)), None);
        assert_eq!(s.on_loss(1, 13, t(1)), Some(RailEvent::Dead(1)));
        assert_eq!(s.state(1), RailState::Dead);
        assert_eq!(s.active_rails(), 1);
        // Dead rail is masked out; rail 0 untouched.
        assert_eq!(s.eligible_mask(t(2)), 0b01);
    }

    #[test]
    fn ack_resets_strikes_and_degraded() {
        let mut s = set2();
        s.on_loss(0, 1, t(0));
        s.on_loss(0, 2, t(0));
        assert_eq!(s.state(0), RailState::Degraded);
        assert_eq!(s.on_ack(0, 3), None);
        assert_eq!(s.state(0), RailState::Healthy);
        // Strikes started over: two more losses only re-degrade.
        s.on_loss(0, 4, t(1));
        s.on_loss(0, 5, t(1));
        assert_eq!(s.state(0), RailState::Degraded);
    }

    #[test]
    fn probe_cycle_readmits_on_ack() {
        let mut s = set2();
        for seq in 0..4 {
            s.on_loss(1, seq, t(0));
        }
        assert_eq!(s.state(1), RailState::Dead);
        // Cooldown not elapsed: still excluded.
        assert_eq!(s.eligible_mask(t(5)), 0b01);
        // Cooldown over: rail flips to Probing and is offered once.
        assert_eq!(s.eligible_mask(t(10)), 0b11);
        s.note_sent(1, 100);
        // Probe in flight: back out of the rotation.
        assert_eq!(s.eligible_mask(t(11)), 0b01);
        assert_eq!(s.on_ack(1, 100), Some(RailEvent::Readmitted(1)));
        assert_eq!(s.state(1), RailState::Healthy);
        assert_eq!(s.eligible_mask(t(12)), 0b11);
    }

    #[test]
    fn probe_loss_restarts_cooldown() {
        let mut s = set2();
        for seq in 0..4 {
            s.on_loss(1, seq, t(0));
        }
        assert_eq!(s.eligible_mask(t(10)), 0b11);
        s.note_sent(1, 100);
        // Probe lost at t=12: dead again, cooldown restarts from 12.
        assert_eq!(s.on_loss(1, 100, t(12)), None);
        assert_eq!(s.state(1), RailState::Dead);
        assert_eq!(s.eligible_mask(t(20)), 0b01);
        assert_eq!(s.eligible_mask(t(22)), 0b11);
    }

    #[test]
    fn all_rails_dead_masks_to_zero() {
        let mut s = set2();
        for rail in 0..2 {
            for seq in 0..4 {
                s.on_loss(rail, seq, t(0));
            }
        }
        assert_eq!(s.active_rails(), 0);
        assert_eq!(s.eligible_mask(t(1)), 0);
    }
}
