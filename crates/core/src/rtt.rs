//! Adaptive retransmission-timeout estimation.
//!
//! RFC 6298-style SRTT/RTTVAR smoothing with exponential backoff, adapted
//! to simulator timescales. The paper's prototype used a fixed 10 ms coarse
//! timer; that is exactly one adaptive-RTO *initial* value here — once RTT
//! samples flow from the frame-ACK path the timeout tracks the real path
//! delay (serialization + switching + host costs + queueing), so a dead
//! rail is detected in a couple of milliseconds instead of ten, while a
//! congested-but-alive path raises the timeout instead of spuriously
//! retransmitting.
//!
//! Karn's algorithm is applied by the caller: retransmitted frames never
//! produce samples (their ACK is ambiguous), which is why
//! [`RttEstimator::on_sample`] is only fed from first-transmission ACKs.

use netsim::time::Dur;

/// RTT smoothing constants from RFC 6298 (§2): `SRTT ← 7/8·SRTT + 1/8·R`,
/// `RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|`, `RTO = SRTT + 4·RTTVAR`.
const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;
const K: f64 = 4.0;

/// Smoothed round-trip estimator producing the retransmission timeout.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    initial: Dur,
    min: Dur,
    max: Dur,
    /// Smoothed RTT in ns; `None` until the first sample.
    srtt_ns: Option<f64>,
    /// RTT variance in ns.
    rttvar_ns: f64,
    /// Consecutive timeouts since the last sample or ack progress.
    backoff: u32,
}

impl RttEstimator {
    /// Estimator starting at `initial` and clamping the timeout (after
    /// backoff) to `[min, max]`.
    pub fn new(initial: Dur, min: Dur, max: Dur) -> Self {
        Self {
            initial,
            min,
            max,
            srtt_ns: None,
            rttvar_ns: 0.0,
            backoff: 0,
        }
    }

    /// Feed one RTT measurement from a first-transmission ACK (Karn's
    /// algorithm: never call this for a retransmitted frame). Clears any
    /// accumulated backoff.
    pub fn on_sample(&mut self, rtt: Dur) {
        let r = rtt.as_nanos() as f64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ns = (1.0 - BETA) * self.rttvar_ns + BETA * (srtt - r).abs();
                self.srtt_ns = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        self.backoff = 0;
    }

    /// Cumulative-ack progress without a usable sample (e.g. the acked frame
    /// was a retransmission): the path is alive, so stop backing off.
    pub fn on_progress(&mut self) {
        self.backoff = 0;
    }

    /// The retransmission timer fired without progress: double the timeout
    /// (up to the cap). Returns the new consecutive-backoff count.
    pub fn on_timeout(&mut self) -> u32 {
        self.backoff = self.backoff.saturating_add(1);
        self.backoff
    }

    /// Consecutive backoffs since the last progress.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Smoothed RTT, once at least one sample has arrived.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt_ns.map(|ns| Dur(ns as u64))
    }

    /// The current timeout: `SRTT + 4·RTTVAR` (or the initial value before
    /// any sample), doubled per accumulated backoff, clamped to
    /// `[min, max]`.
    pub fn current_rto(&self) -> Dur {
        let base = match self.srtt_ns {
            None => self.initial.as_nanos() as f64,
            Some(srtt) => srtt + K * self.rttvar_ns,
        };
        let shift = self.backoff.min(32);
        let backed = base * (1u64 << shift) as f64;
        let clamped = backed
            .max(self.min.as_nanos() as f64)
            .min(self.max.as_nanos() as f64);
        Dur(clamped as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::{ms, us};

    fn est() -> RttEstimator {
        RttEstimator::new(ms(10), us(500), ms(100))
    }

    #[test]
    fn starts_at_initial_and_adapts_down() {
        let mut e = est();
        assert_eq!(e.current_rto(), ms(10));
        // A steady 100 µs RTT pulls the timeout to SRTT + 4·RTTVAR, well
        // under the initial 10 ms but at least the 500 µs floor.
        for _ in 0..32 {
            e.on_sample(us(100));
        }
        let rto = e.current_rto();
        assert!(rto < ms(2), "rto {rto:?} should adapt far below initial");
        assert!(rto >= us(500), "rto {rto:?} must respect the floor");
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.on_sample(us(200));
        assert_eq!(e.srtt(), Some(us(200)));
        // RTO = R + 4·(R/2) = 3R = 600 µs.
        assert_eq!(e.current_rto(), us(600));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.on_sample(us(200)); // rto 600 µs
        assert_eq!(e.on_timeout(), 1);
        assert_eq!(e.current_rto(), us(1200));
        assert_eq!(e.on_timeout(), 2);
        assert_eq!(e.current_rto(), us(2400));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.current_rto(), ms(100), "backoff must clamp at the cap");
        e.on_progress();
        assert_eq!(e.backoff(), 0);
        assert_eq!(e.current_rto(), us(600));
    }

    #[test]
    fn variance_widens_on_jittery_path() {
        // A floor low enough not to mask the variance difference.
        let mut steady = RttEstimator::new(ms(10), us(1), ms(100));
        let mut jittery = RttEstimator::new(ms(10), us(1), ms(100));
        for i in 0..64 {
            steady.on_sample(us(100));
            jittery.on_sample(if i % 2 == 0 { us(50) } else { us(150) });
        }
        assert!(jittery.current_rto() > steady.current_rto());
    }
}
