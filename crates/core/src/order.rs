//! Operation-level ordering: fences and the reorder buffer (§2.5).
//!
//! Operations are numbered densely per connection direction in issue order.
//! A fragment may be applied at the receiver as soon as it arrives *unless*
//! an ordering constraint holds it back:
//!
//! * the fragment's **fence floor** (set by the sender to one past the most
//!   recent forward-fenced operation issued before it) requires every
//!   operation below the floor to be fully applied first, and
//! * a **backward fence** on the fragment's own operation requires *every*
//!   earlier operation to be fully applied first.
//!
//! Fragments that cannot be applied yet are buffered; when an operation
//! completes, the tracker re-examines buffered operations in id order and
//! releases whatever became eligible (cascading).
//!
//! The tracker is generic over the fragment payload type so it can be tested
//! standalone and reused for both writes and read-requests.
//!
//! `DESIGN.md` §4.4 walks one fenced two-rail exchange through this
//! machinery as an annotated sequence diagram; the time a fragment spends
//! buffered here is surfaced as `fence_stall`/`fence_release` trace events
//! and the `fence_stall` histogram (see `docs/OBSERVABILITY.md`).

use std::collections::BTreeMap;

/// Ordering-relevant attributes of one fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragMeta {
    /// Operation id (dense per direction).
    pub op_id: u64,
    /// Operation total payload bytes (0 for read requests).
    pub op_total: u64,
    /// All ops `< fence_floor` must be applied before this op.
    pub fence_floor: u64,
    /// Backward fence: all ops `< op_id` must be applied before this op.
    pub fence_backward: bool,
    /// This fragment's payload length (0 allowed only for 0-total ops).
    pub len: u64,
}

#[derive(Debug)]
struct OpEntry<T> {
    total: u64,
    applied: u64,
    fence_floor: u64,
    fence_backward: bool,
    /// Seen at least one fragment (entries can exist purely as ordering
    /// placeholders? No: entries exist only once a fragment arrived).
    complete: bool,
    buffered: Vec<(FragMeta, T)>,
}

/// Result of offering a fragment or of a cascade: fragments now applicable,
/// and operations that completed as a result.
#[derive(Debug)]
pub struct Release<T> {
    /// Fragments to apply now, in a valid order.
    pub apply: Vec<(FragMeta, T)>,
    /// Ids of operations that became fully applied, in completion order.
    pub completed: Vec<u64>,
}

// Manual impl: the derive would demand `T: Default`, which fragment payloads
// have no reason to provide.
impl<T> Default for Release<T> {
    fn default() -> Self {
        Self {
            apply: Vec::new(),
            completed: Vec::new(),
        }
    }
}

/// Fence-aware reorder buffer for one connection direction.
#[derive(Debug)]
pub struct OpOrdering<T> {
    ops: BTreeMap<u64, OpEntry<T>>,
    /// Every op with id `< applied_below` is fully applied.
    applied_below: u64,
    /// Fragments currently buffered (for stats).
    buffered: usize,
    /// High-water mark of buffered fragments.
    buffered_peak: usize,
}

impl<T> Default for OpOrdering<T> {
    fn default() -> Self {
        Self {
            ops: BTreeMap::new(),
            applied_below: 0,
            buffered: 0,
            buffered_peak: 0,
        }
    }
}

impl<T> OpOrdering<T> {
    /// Fresh tracker expecting op 0 as the first operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// All ops below this id are fully applied.
    pub fn applied_below(&self) -> u64 {
        self.applied_below
    }

    /// Fragments currently held back by fences.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// High-water mark of [`Self::buffered`].
    pub fn buffered_peak(&self) -> usize {
        self.buffered_peak
    }

    fn entry(&mut self, meta: &FragMeta) -> &mut OpEntry<T> {
        self.ops.entry(meta.op_id).or_insert_with(|| OpEntry {
            total: meta.op_total,
            applied: 0,
            fence_floor: meta.fence_floor,
            fence_backward: meta.fence_backward,
            complete: false,
            buffered: Vec::new(),
        })
    }

    fn can_apply(&self, op_id: u64, fence_floor: u64, fence_backward: bool) -> bool {
        if self.applied_below < fence_floor {
            return false;
        }
        if fence_backward && self.applied_below < op_id {
            return false;
        }
        true
    }

    /// Offer an arriving (non-duplicate) fragment. Returns the fragments to
    /// apply now (possibly including previously buffered ones released by
    /// this fragment completing its op) and the ops that completed.
    pub fn offer(&mut self, meta: FragMeta, frag: T) -> Release<T> {
        let mut out = Release {
            apply: Vec::new(),
            completed: Vec::new(),
        };
        self.offer_into(meta, frag, &mut out);
        out
    }

    /// Like [`Self::offer`], but writes the released fragments and completed
    /// ops into a caller-owned [`Release`] (cleared first), reusing its
    /// vectors' capacity. The hot receive path holds one scratch `Release`
    /// per connection and calls this to avoid a per-fragment allocation.
    pub fn offer_into(&mut self, meta: FragMeta, frag: T, out: &mut Release<T>) {
        out.apply.clear();
        out.completed.clear();
        if self.can_apply(meta.op_id, meta.fence_floor, meta.fence_backward) {
            self.apply_fragment(meta, frag, out);
            self.cascade(out);
        } else {
            let e = self.entry(&meta);
            e.buffered.push((meta, frag));
            self.buffered += 1;
            self.buffered_peak = self.buffered_peak.max(self.buffered);
        }
    }

    /// Apply one fragment: count its bytes, emit it, and handle completion.
    fn apply_fragment(&mut self, meta: FragMeta, frag: T, out: &mut Release<T>) {
        let e = self.entry(&meta);
        e.applied += meta.len;
        debug_assert!(e.applied <= e.total.max(e.applied));
        let completed = !e.complete && e.applied >= e.total;
        if completed {
            e.complete = true;
        }
        out.apply.push((meta, frag));
        if completed {
            out.completed.push(meta.op_id);
            self.advance();
        }
    }

    /// Advance `applied_below` past contiguously complete ops and prune.
    fn advance(&mut self) {
        while let Some(e) = self.ops.get(&self.applied_below) {
            if e.complete && e.buffered.is_empty() {
                self.ops.remove(&self.applied_below);
                self.applied_below += 1;
            } else {
                break;
            }
        }
    }

    /// Release buffered fragments that became eligible; loop to fixpoint.
    fn cascade(&mut self, out: &mut Release<T>) {
        loop {
            // Find the first op with buffered fragments that can now apply.
            let candidate = self.ops.iter().find_map(|(&id, e)| {
                if !e.buffered.is_empty()
                    && self.can_apply(id, e.fence_floor, e.fence_backward)
                {
                    Some(id)
                } else {
                    None
                }
            });
            let Some(id) = candidate else { break };
            let frags = {
                let e = self.ops.get_mut(&id).expect("candidate exists");
                std::mem::take(&mut e.buffered)
            };
            self.buffered -= frags.len();
            for (meta, frag) in frags {
                self.apply_fragment(meta, frag, out);
            }
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(op_id: u64, op_total: u64, fence_floor: u64, bwd: bool, len: u64) -> FragMeta {
        FragMeta {
            op_id,
            op_total,
            fence_floor,
            fence_backward: bwd,
            len,
        }
    }

    /// Tag fragments by (op, index) so we can see what was released.
    type Tag = (u64, u64);

    #[test]
    fn unfenced_fragments_apply_immediately_in_any_order() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Op 1 arrives entirely before op 0; no fences: all apply at once.
        let r = o.offer(meta(1, 10, 0, false, 10), (1, 0));
        assert_eq!(r.apply.len(), 1);
        assert_eq!(r.completed, vec![1]);
        let r = o.offer(meta(0, 4, 0, false, 4), (0, 0));
        assert_eq!(r.apply.len(), 1);
        assert_eq!(r.completed, vec![0]);
        assert_eq!(o.applied_below(), 2);
        assert_eq!(o.buffered(), 0);
    }

    #[test]
    fn backward_fence_waits_for_all_earlier_ops() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Op 1 has a backward fence; op 0 has not arrived yet.
        let r = o.offer(meta(1, 5, 0, true, 5), (1, 0));
        assert!(r.apply.is_empty());
        assert!(r.completed.is_empty());
        assert_eq!(o.buffered(), 1);
        // Op 0 arrives → applies → releases op 1.
        let r = o.offer(meta(0, 3, 0, false, 3), (0, 0));
        assert_eq!(
            r.apply.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![(0, 0), (1, 0)]
        );
        assert_eq!(r.completed, vec![0, 1]);
        assert_eq!(o.buffered(), 0);
        assert_eq!(o.applied_below(), 2);
    }

    #[test]
    fn fence_floor_blocks_later_ops_until_fwd_op_done() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Op 0 is forward-fenced (two fragments). Ops 1,2 carry floor=1.
        let r = o.offer(meta(2, 1, 1, false, 1), (2, 0));
        assert!(r.apply.is_empty());
        let r = o.offer(meta(1, 1, 1, false, 1), (1, 0));
        assert!(r.apply.is_empty());
        assert_eq!(o.buffered(), 2);
        // First fragment of op 0: applies (floor 0) but op not complete.
        let r = o.offer(meta(0, 8, 0, false, 4), (0, 0));
        assert_eq!(r.apply.len(), 1);
        assert!(r.completed.is_empty());
        assert_eq!(o.buffered(), 2);
        // Second fragment completes op 0 → both buffered ops release in
        // id order.
        let r = o.offer(meta(0, 8, 0, false, 4), (0, 1));
        assert_eq!(
            r.apply.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![(0, 1), (1, 0), (2, 0)]
        );
        assert_eq!(r.completed, vec![0, 1, 2]);
        assert_eq!(o.applied_below(), 3);
    }

    #[test]
    fn forward_fenced_op_itself_applies_freely() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Op 1 is forward-fenced (affects op ≥ 2 via floor), but op 1 itself
        // has no backward fence: it may apply before op 0.
        let r = o.offer(meta(1, 2, 0, false, 2), (1, 0));
        assert_eq!(r.apply.len(), 1);
        // Op 2 (floor = 2 because op 1 was fwd-fenced) must wait for 0 and 1.
        let r = o.offer(meta(2, 2, 2, false, 2), (2, 0));
        assert!(r.apply.is_empty());
        // Op 0 arrives: applied_below advances past 0 and 1 → releases 2.
        let r = o.offer(meta(0, 2, 0, false, 2), (0, 0));
        assert_eq!(
            r.apply.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![(0, 0), (2, 0)]
        );
    }

    #[test]
    fn zero_length_op_completes_on_single_fragment() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Read requests have total 0: complete as soon as they may apply.
        let r = o.offer(meta(0, 0, 0, false, 0), (0, 0));
        assert_eq!(r.apply.len(), 1);
        assert_eq!(r.completed, vec![0]);
        assert_eq!(o.applied_below(), 1);
    }

    #[test]
    fn strict_ordering_mode_serializes_everything() {
        // Both fences on every op (2L mode): apply order == issue order,
        // regardless of arrival order.
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        let mut applied = Vec::new();
        // Arrival order 3,1,0,2; every op i has bwd fence + floor=i.
        for arrive in [3u64, 1, 0, 2] {
            let r = o.offer(meta(arrive, 1, arrive, true, 1), (arrive, 0));
            applied.extend(r.apply.iter().map(|(_, t)| t.0));
        }
        assert_eq!(applied, vec![0, 1, 2, 3]);
        assert_eq!(o.applied_below(), 4);
        assert_eq!(o.buffered_peak(), 2); // 3 and 1 were held
    }

    #[test]
    fn interleaved_fragments_of_multiple_ops() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        // Op 0: 3 fragments, forward-fenced. Op 1: 2 fragments with floor 1.
        // Fragments interleave; op 1 fragments buffer until op 0 completes.
        assert_eq!(o.offer(meta(0, 3, 0, false, 1), (0, 0)).apply.len(), 1);
        assert!(o.offer(meta(1, 2, 1, false, 1), (1, 0)).apply.is_empty());
        assert_eq!(o.offer(meta(0, 3, 0, false, 1), (0, 1)).apply.len(), 1);
        assert!(o.offer(meta(1, 2, 1, false, 1), (1, 1)).apply.is_empty());
        let r = o.offer(meta(0, 3, 0, false, 1), (0, 2));
        // Final op-0 fragment + both op-1 fragments released.
        assert_eq!(r.apply.len(), 3);
        assert_eq!(r.completed, vec![0, 1]);
    }

    #[test]
    fn buffered_stats_track_peak() {
        let mut o: OpOrdering<Tag> = OpOrdering::new();
        for i in 1..=5u64 {
            o.offer(meta(i, 1, 0, true, 1), (i, 0));
        }
        assert_eq!(o.buffered(), 5);
        assert_eq!(o.buffered_peak(), 5);
        o.offer(meta(0, 1, 0, false, 1), (0, 0));
        assert_eq!(o.buffered(), 0);
        assert_eq!(o.buffered_peak(), 5);
        assert_eq!(o.applied_below(), 6);
    }
}
