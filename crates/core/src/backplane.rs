//! The transport backplane: the seam between the MultiEdge protocol state
//! machines and whatever actually carries frames.
//!
//! Everything above this trait — sliding window, striping scheduler, rail
//! health, NACK/RTO recovery, fences, span instrumentation — is pure state
//! machine code. Everything below it is mechanics: the netsim discrete
//! event simulator ([`SimBackplane`]) or real non-blocking UDP sockets on
//! loopback ([`UdpBackplane`]), one socket per rail. The
//! [`WireEndpoint`] driver runs the protocol over either implementation
//! **unmodified**, which is what makes the simulator's cost model
//! falsifiable: run the same workload on both backends, snapshot the same
//! span recorder, and diff the per-phase attributions with
//! `me-inspect diff` (see `docs/BACKPLANE.md`).
//!
//! The shape follows the netmod `Endpoint` abstraction from irdest
//! (SNIPPETS.md Snippet 2): a backend advertises its frame size budget,
//! accepts sends, and yields received frames — with two MultiEdge-specific
//! additions, per-rail identity (striping needs to address each physical
//! link) and an explicit deadline-driven [`Backplane::advance`] so one
//! single-threaded poll loop can drive timers on virtual *or* wall-clock
//! time.

use frame::{Frame, MacAddr};

mod chaos;
mod sim;
mod udp;
mod wire;

pub use chaos::{ChaosConfig, ChaosDecision, ChaosStats, FaultBackplane};
pub use sim::SimBackplane;
pub use udp::{UdpBackplane, UdpFabric, UdpFabricConfig, UdpFabricStats, UdpRxError};
pub use wire::{
    drain, drive, drive_with, CompletedWrite, DriveLimits, WireConnState, WireEndpoint, WireError,
};

/// One frame delivered by a backplane, tagged with the rail it arrived on
/// and the backplane-clock timestamp of its physical arrival.
///
/// The timestamp is captured at delivery (inside the simulator's receive
/// event, or when the datagram is drained from its socket) rather than when
/// the driver gets around to processing the frame, so the span recorder's
/// arrival milestone stays honest even when the poll loop is behind.
#[derive(Debug, Clone)]
pub struct BpRx {
    /// Rail the frame arrived on.
    pub rail: u32,
    /// Arrival timestamp on this backplane's clock (see
    /// [`Backplane::now_ns`]).
    pub at_ns: u64,
    /// The decoded frame.
    pub frame: Frame,
}

/// A transport backend: per-rail frame I/O plus the clock that drives the
/// protocol's timers.
///
/// # Contract
///
/// * **Rail identity.** A backplane exposes `rails()` independent links,
///   indexed `0..rails()`. [`Backplane::local_mac`]/[`Backplane::peer_mac`]
///   give the per-rail addresses frames must carry; the protocol stripes
///   frames across rails and routes control traffic by rail index.
/// * **Ordering.** No ordering guarantee, per rail or across rails. Frames
///   may be reordered, dropped ([`Backplane::send`] returning `true` only
///   means *accepted*, never *delivered*) or — on a lossy backend —
///   corrupted in flight; corrupted frames are discarded by the backplane
///   (they model what the Ethernet FCS would have caught) and never reach
///   [`Backplane::next`].
/// * **MTU.** [`Backplane::mtu`] is the largest payload (in bytes, after
///   the MultiEdge header) one frame may carry; [`Backplane::peer_mtu`] is
///   the largest payload the peer can accept. Senders must fragment to
///   `mtu().min(peer_mtu())`.
/// * **Time source.** [`Backplane::now_ns`] is a monotonic nanosecond clock
///   starting near zero: virtual time on the simulator, wall-clock time
///   since fabric creation on UDP. All protocol deadlines (delayed ack,
///   NACK pacing, RTO) are expressed on this clock, which is what lets the
///   identical driver code run on both.
/// * **Progress.** [`Backplane::advance`] blocks (virtually or really)
///   until either `until_ns` is reached or new frames became available
///   *anywhere on the fabric* — not just for this node — so a driver loop
///   interleaving several endpoints never sleeps through a peer's traffic.
pub trait Backplane {
    /// Number of independent rails (physical links) this backplane spans.
    fn rails(&self) -> usize;

    /// Largest frame payload this backplane can carry, in bytes.
    fn mtu(&self) -> usize;

    /// Largest frame payload the peer can accept, in bytes. Senders
    /// fragment to `mtu().min(peer_mtu())`.
    fn peer_mtu(&self) -> usize;

    /// This node's address on `rail`.
    fn local_mac(&self, rail: usize) -> MacAddr;

    /// The peer's address on `rail` (the per-rail send target).
    fn peer_mac(&self, rail: usize) -> MacAddr;

    /// Monotonic nanoseconds on this backplane's clock.
    fn now_ns(&self) -> u64;

    /// Hand `frame` to `rail` for transmission. Returns `false` when the
    /// rail rejected it (transmit queue full) — the frame is then simply
    /// lost from the protocol's point of view and recovered like any other
    /// loss (NACK or RTO).
    fn send(&mut self, rail: usize, frame: Frame) -> bool;

    /// The next received frame for this node, if any is pending.
    fn next(&mut self) -> Option<BpRx>;

    /// Current transmit backlog of `rail` in nanoseconds of wire time —
    /// the queue-aware scheduling signal. Backends that cannot observe
    /// their queues (UDP: the kernel socket buffer is opaque) report 0.
    fn tx_backlog_ns(&self, rail: usize) -> u64;

    /// Let the transport make progress until `until_ns` (on this
    /// backplane's clock) or until new frames arrived anywhere on the
    /// fabric, whichever is first. Returns the clock after advancing.
    fn advance(&mut self, until_ns: u64) -> u64;
}
