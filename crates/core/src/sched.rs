//! Link scheduling for spatial parallelism (§2.5).
//!
//! "Whenever a frame needs to be transmitted, MultiEdge will use one of the
//! available network interfaces based on a load-balancing policy. We
//! currently use a round-robin policy." — the paper's policy is
//! [`SchedPolicy::RoundRobin`]; the alternatives exist for the scheduling
//! ablation bench.

use netsim::{Dur, Network, NicId};

/// Which link-selection policy a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The paper's policy: cycle through the rails frame by frame.
    #[default]
    RoundRobin,
    /// Uniformly random rail per frame.
    Random,
    /// Pick the rail whose transmit queue has the least backlog, breaking
    /// ties round-robin.
    ShortestQueue,
    /// Pin all traffic to one rail (degenerates to a 1L setup).
    Single(usize),
}

/// Eligibility mask meaning "every rail may carry the next frame".
pub const ALL_RAILS: u64 = u64::MAX;

/// Per-connection scheduler state.
#[derive(Debug, Clone)]
pub struct LinkScheduler {
    policy: SchedPolicy,
    cursor: usize,
}

impl LinkScheduler {
    /// New scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        Self { policy, cursor: 0 }
    }

    /// Pick the rail for the next frame. `nics` are the local NICs, one per
    /// rail; `backlog` may be consulted for queue-aware policies. `mask` is
    /// the rail-health eligibility mask (bit r set = rail r may be used);
    /// a mask that excludes every rail falls back to all rails — a fully
    /// dead rail set must degrade to "keep trying", never to a stall.
    /// [`SchedPolicy::Single`] ignores the mask: an explicit pin is an
    /// operator decision that health tracking must not override.
    pub fn pick(
        &mut self,
        nics: &[NicId],
        net: &Network,
        mask: u64,
        rng_draw: impl FnOnce(usize) -> usize,
    ) -> usize {
        debug_assert!(!nics.is_empty());
        let all = if nics.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << nics.len()) - 1
        };
        let mask = if mask & all == 0 { all } else { mask & all };
        let ok = |i: usize| mask & (1 << i) != 0;
        match self.policy {
            SchedPolicy::RoundRobin => {
                let mut r = self.cursor % nics.len();
                while !ok(r) {
                    r = (r + 1) % nics.len();
                }
                self.cursor = (r + 1) % nics.len();
                r
            }
            SchedPolicy::Random => {
                let eligible: Vec<usize> = (0..nics.len()).filter(|&i| ok(i)).collect();
                eligible[rng_draw(eligible.len())]
            }
            SchedPolicy::ShortestQueue => {
                let mut best = None;
                let mut best_backlog = Dur(u64::MAX);
                for off in 0..nics.len() {
                    let i = (self.cursor + off) % nics.len();
                    if !ok(i) {
                        continue;
                    }
                    let b = net.nic_tx_backlog(nics[i]);
                    if b < best_backlog {
                        best_backlog = b;
                        best = Some(i);
                    }
                }
                let best = best.unwrap_or(self.cursor % nics.len());
                self.cursor = (best + 1) % nics.len();
                best
            }
            SchedPolicy::Single(i) => i.min(nics.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frame::MacAddr;
    use netsim::{ChannelParams, FaultModel, Sim};

    fn net_with_nics(n: usize) -> (Network, Vec<NicId>) {
        let sim = Sim::new(0);
        let net = Network::new(&sim, FaultModel::default());
        let sw = net.add_switch(netsim::time::us(1));
        let nics: Vec<_> = (0..n)
            .map(|i| {
                let nic = net.add_nic(MacAddr::new(0, i as u8));
                net.connect(nic, sw, ChannelParams::gbe_1());
                nic
            })
            .collect();
        (net, nics)
    }

    #[test]
    fn round_robin_cycles() {
        let (net, nics) = net_with_nics(3);
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        let picks: Vec<_> = (0..7).map(|_| s.pick(&nics, &net, ALL_RAILS, |_| 0)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_masked_out_rails() {
        let (net, nics) = net_with_nics(3);
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        // Rail 1 excluded: rotation degrades to 0, 2, 0, …
        let picks: Vec<_> = (0..3).map(|_| s.pick(&nics, &net, 0b101, |_| 0)).collect();
        assert_eq!(picks, vec![0, 2, 0]);
        // Rail 1 re-admitted: the rotation picks it back up.
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 1);
    }

    #[test]
    fn empty_mask_falls_back_to_all_rails() {
        let (net, nics) = net_with_nics(2);
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        let picks: Vec<_> = (0..4).map(|_| s.pick(&nics, &net, 0, |_| 0)).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn single_pins_and_clamps() {
        let (net, nics) = net_with_nics(2);
        let mut s = LinkScheduler::new(SchedPolicy::Single(1));
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 1);
        let mut s = LinkScheduler::new(SchedPolicy::Single(9));
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 1);
        // A pin overrides the health mask.
        let mut s = LinkScheduler::new(SchedPolicy::Single(1));
        assert_eq!(s.pick(&nics, &net, 0b01, |_| 0), 1);
    }

    #[test]
    fn random_uses_draw() {
        let (net, nics) = net_with_nics(4);
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |n| n - 1), 3);
        // Draw happens over the eligible subset only.
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(&nics, &net, 0b1010, |n| n - 1), 3);
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(&nics, &net, 0b1010, |_| 0), 1);
    }

    #[test]
    fn shortest_queue_prefers_idle_link() {
        let (net, nics) = net_with_nics(2);
        let mut s = LinkScheduler::new(SchedPolicy::ShortestQueue);
        // Both idle: first pick takes rail 0, advancing the cursor.
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 0);
        // Load rail 1 heavily by sending frames on it directly.
        for _ in 0..5 {
            let f = frame::Frame {
                src: MacAddr::new(0, 1),
                dst: MacAddr::new(0, 0),
                header: frame::FrameHeader::default(),
                payload: bytes::Bytes::from(vec![0u8; 1400]),
            };
            net.nic_send(nics[1], f);
        }
        // Rail 0 is idle, rail 1 backlogged: always rail 0 now.
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 0);
        assert_eq!(s.pick(&nics, &net, ALL_RAILS, |_| 0), 0);
        // Unless rail 0 is masked out by health tracking.
        assert_eq!(s.pick(&nics, &net, 0b10, |_| 0), 1);
    }
}
