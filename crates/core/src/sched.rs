//! Link scheduling for spatial parallelism (§2.5).
//!
//! "Whenever a frame needs to be transmitted, MultiEdge will use one of the
//! available network interfaces based on a load-balancing policy. We
//! currently use a round-robin policy." — the paper's policy is
//! [`SchedPolicy::RoundRobin`]; the alternatives exist for the scheduling
//! ablation bench.
//!
//! The scheduler is deliberately transport-agnostic: it reasons about rail
//! *indices* and a backlog probe, never about NICs or the simulator. That
//! is what lets the same per-connection scheduler state drive both the
//! netsim backend and the real UDP backend behind the
//! [`Backplane`](crate::backplane::Backplane) seam.

/// Which link-selection policy a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The paper's policy: cycle through the rails frame by frame.
    #[default]
    RoundRobin,
    /// Uniformly random rail per frame.
    Random,
    /// Pick the rail whose transmit queue has the least backlog, breaking
    /// ties round-robin.
    ShortestQueue,
    /// Pin all traffic to one rail (degenerates to a 1L setup).
    Single(usize),
}

/// Eligibility mask meaning "every rail may carry the next frame".
pub const ALL_RAILS: u64 = u64::MAX;

/// Per-connection scheduler state.
#[derive(Debug, Clone)]
pub struct LinkScheduler {
    policy: SchedPolicy,
    cursor: usize,
}

impl LinkScheduler {
    /// New scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        Self { policy, cursor: 0 }
    }

    /// Pick the rail for the next frame among `rails` rails (indices
    /// `0..rails`). `backlog_ns` reports a rail's current transmit backlog
    /// in nanoseconds and is only consulted by queue-aware policies.
    /// `mask` is the rail-health eligibility mask (bit r set = rail r may
    /// be used); a mask that excludes every rail falls back to all rails —
    /// a fully dead rail set must degrade to "keep trying", never to a
    /// stall. [`SchedPolicy::Single`] ignores the mask: an explicit pin is
    /// an operator decision that health tracking must not override.
    pub fn pick(
        &mut self,
        rails: usize,
        mask: u64,
        backlog_ns: impl Fn(usize) -> u64,
        rng_draw: impl FnOnce(usize) -> usize,
    ) -> usize {
        debug_assert!(rails > 0);
        let all = if rails >= 64 {
            u64::MAX
        } else {
            (1u64 << rails) - 1
        };
        let mask = if mask & all == 0 { all } else { mask & all };
        let ok = |i: usize| mask & (1 << i) != 0;
        match self.policy {
            SchedPolicy::RoundRobin => {
                let mut r = self.cursor % rails;
                while !ok(r) {
                    r = (r + 1) % rails;
                }
                self.cursor = (r + 1) % rails;
                r
            }
            SchedPolicy::Random => {
                let eligible: Vec<usize> = (0..rails).filter(|&i| ok(i)).collect();
                eligible[rng_draw(eligible.len())]
            }
            SchedPolicy::ShortestQueue => {
                let mut best = None;
                let mut best_backlog = u64::MAX;
                for off in 0..rails {
                    let i = (self.cursor + off) % rails;
                    if !ok(i) {
                        continue;
                    }
                    let b = backlog_ns(i);
                    if b < best_backlog {
                        best_backlog = b;
                        best = Some(i);
                    }
                }
                let best = best.unwrap_or(self.cursor % rails);
                self.cursor = (best + 1) % rails;
                best
            }
            SchedPolicy::Single(i) => i.min(rails - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All rails idle — the backlog probe for order-only tests.
    fn idle(_: usize) -> u64 {
        0
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        let picks: Vec<_> = (0..7).map(|_| s.pick(3, ALL_RAILS, idle, |_| 0)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_masked_out_rails() {
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        // Rail 1 excluded: rotation degrades to 0, 2, 0, …
        let picks: Vec<_> = (0..3).map(|_| s.pick(3, 0b101, idle, |_| 0)).collect();
        assert_eq!(picks, vec![0, 2, 0]);
        // Rail 1 re-admitted: the rotation picks it back up.
        assert_eq!(s.pick(3, ALL_RAILS, idle, |_| 0), 1);
    }

    #[test]
    fn empty_mask_falls_back_to_all_rails() {
        let mut s = LinkScheduler::new(SchedPolicy::RoundRobin);
        let picks: Vec<_> = (0..4).map(|_| s.pick(2, 0, idle, |_| 0)).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn single_pins_and_clamps() {
        let mut s = LinkScheduler::new(SchedPolicy::Single(1));
        assert_eq!(s.pick(2, ALL_RAILS, idle, |_| 0), 1);
        let mut s = LinkScheduler::new(SchedPolicy::Single(9));
        assert_eq!(s.pick(2, ALL_RAILS, idle, |_| 0), 1);
        // A pin overrides the health mask.
        let mut s = LinkScheduler::new(SchedPolicy::Single(1));
        assert_eq!(s.pick(2, 0b01, idle, |_| 0), 1);
    }

    #[test]
    fn random_uses_draw() {
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(4, ALL_RAILS, idle, |n| n - 1), 3);
        // Draw happens over the eligible subset only.
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(4, 0b1010, idle, |n| n - 1), 3);
        let mut s = LinkScheduler::new(SchedPolicy::Random);
        assert_eq!(s.pick(4, 0b1010, idle, |_| 0), 1);
    }

    #[test]
    fn shortest_queue_prefers_idle_link() {
        let mut s = LinkScheduler::new(SchedPolicy::ShortestQueue);
        // Both idle: first pick takes rail 0, advancing the cursor.
        assert_eq!(s.pick(2, ALL_RAILS, idle, |_| 0), 0);
        // Rail 0 idle, rail 1 backlogged: always rail 0 now.
        let loaded = |i: usize| if i == 1 { 50_000 } else { 0 };
        assert_eq!(s.pick(2, ALL_RAILS, loaded, |_| 0), 0);
        assert_eq!(s.pick(2, ALL_RAILS, loaded, |_| 0), 0);
        // Unless rail 0 is masked out by health tracking.
        assert_eq!(s.pick(2, 0b10, loaded, |_| 0), 1);
    }

    #[test]
    fn shortest_queue_breaks_ties_round_robin() {
        let mut s = LinkScheduler::new(SchedPolicy::ShortestQueue);
        // Equal backlogs: the cursor rotates like round-robin.
        let picks: Vec<_> = (0..4).map(|_| s.pick(3, ALL_RAILS, idle, |_| 0)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0]);
    }
}
