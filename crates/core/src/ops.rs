//! Operation handles and completion notifications.
//!
//! Every RDMA operation returns an [`OpHandle`] the application can poll or
//! await (§2.2: "Each operation can also, when initiated, return a handle.
//! The programmer can query the progress of each issued operation").
//!
//! A remote **write** completes locally once every frame of the operation has
//! been positively acknowledged (so local buffers may be reused and ordering
//! with subsequent control messages can be enforced by completion-waiting,
//! the idiom the DSM uses). A remote **read** completes once all response
//! data has been applied to local memory.

use netsim::sync::{Flag, FlagWait};
use netsim::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Kind of RDMA operation (§2.2 defines remote read and remote write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Remote memory write.
    Write,
    /// Remote memory read.
    Read,
}

/// Options for an RDMA operation (the `flags` bit-field of the paper's
/// `RDMA_operation` call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpFlags {
    /// Backward fence: perform this operation at the destination only after
    /// all previously issued operations to the same destination (§2.5).
    pub fence_backward: bool,
    /// Forward fence: later operations to the same destination are performed
    /// only after this one (§2.5).
    pub fence_forward: bool,
    /// Deliver a notification at the remote node when this remote write has
    /// fully completed there (§2.2).
    pub notify: bool,
}

impl OpFlags {
    /// No fences, no notification (the default: free reordering).
    pub const RELAXED: OpFlags = OpFlags {
        fence_backward: false,
        fence_forward: false,
        notify: false,
    };

    /// Both fences: fully ordered with respect to every other operation.
    pub const ORDERED: OpFlags = OpFlags {
        fence_backward: true,
        fence_forward: true,
        notify: false,
    };

    /// Ordered + notify: the idiom for control messages (mailbox writes).
    pub const ORDERED_NOTIFY: OpFlags = OpFlags {
        fence_backward: true,
        fence_forward: true,
        notify: true,
    };

    /// With the notify bit set.
    pub fn with_notify(mut self) -> Self {
        self.notify = true;
        self
    }

    /// With the backward fence set.
    pub fn with_fence_backward(mut self) -> Self {
        self.fence_backward = true;
        self
    }

    /// With the forward fence set.
    pub fn with_fence_forward(mut self) -> Self {
        self.fence_forward = true;
        self
    }
}

#[derive(Debug)]
struct OpProgress {
    issued_at: SimTime,
    completed_at: Option<SimTime>,
}

/// Handle to an in-flight RDMA operation.
#[derive(Clone)]
pub struct OpHandle {
    kind: OpKind,
    len: usize,
    st: Rc<RefCell<OpProgress>>,
    flag: Flag,
}

impl OpHandle {
    /// New incomplete handle (protocol-internal).
    pub(crate) fn new(sim: &Sim, kind: OpKind, len: usize) -> Self {
        Self {
            kind,
            len,
            st: Rc::new(RefCell::new(OpProgress {
                issued_at: sim.now(),
                completed_at: None,
            })),
            flag: Flag::new(sim),
        }
    }

    /// Mark complete (protocol-internal).
    pub(crate) fn complete(&self, now: SimTime) {
        let mut st = self.st.borrow_mut();
        if st.completed_at.is_none() {
            st.completed_at = Some(now);
        }
        drop(st);
        self.flag.fire();
    }

    /// Operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Operation payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length operations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Non-blocking completion test (the paper's progress-query primitive).
    pub fn is_done(&self) -> bool {
        self.flag.is_fired()
    }

    /// Await completion.
    pub fn wait(&self) -> FlagWait {
        self.flag.wait()
    }

    /// Virtual time from issue to completion, if complete.
    pub fn latency(&self) -> Option<netsim::Dur> {
        let st = self.st.borrow();
        st.completed_at.map(|c| c.since(st.issued_at))
    }
}

/// Completion notification delivered to the *target* of a remote write whose
/// initiator set [`OpFlags::notify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Node that issued the write.
    pub from_node: usize,
    /// First byte written.
    pub addr: u64,
    /// Bytes written.
    pub len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_completes_once() {
        let sim = Sim::new(0);
        let h = OpHandle::new(&sim, OpKind::Write, 128);
        assert!(!h.is_done());
        assert_eq!(h.latency(), None);
        h.complete(SimTime(5_000));
        assert!(h.is_done());
        assert_eq!(h.latency(), Some(netsim::time::us(5)));
        // Second completion is ignored.
        h.complete(SimTime(9_000));
        assert_eq!(h.latency(), Some(netsim::time::us(5)));
    }

    #[test]
    fn wait_unblocks_on_complete() {
        let sim = Sim::new(0);
        let h = OpHandle::new(&sim, OpKind::Read, 64);
        let h2 = h.clone();
        let s = sim.clone();
        let t = sim.spawn("waiter", async move {
            h2.wait().await;
            s.now()
        });
        let h3 = h.clone();
        sim.schedule_in(netsim::time::us(10), move |sim| h3.complete(sim.now()));
        sim.run().expect_quiescent();
        assert_eq!(t.try_take(), Some(SimTime(10_000)));
    }

    #[test]
    fn flag_builders_compose() {
        let f = OpFlags::RELAXED.with_notify().with_fence_forward();
        assert!(f.notify && f.fence_forward && !f.fence_backward);
        const { assert!(OpFlags::ORDERED.fence_backward && OpFlags::ORDERED.fence_forward) }
        const { assert!(OpFlags::ORDERED_NOTIFY.notify) }
    }
}
