//! The MultiEdge endpoint: per-node protocol instance.
//!
//! One [`Endpoint`] models everything the paper's kernel module does on one
//! node (§2): the programming API (asynchronous remote writes and reads with
//! handles and notifications), the send path (syscall, user→kernel copy,
//! fragmentation, DMA posting), the sliding-window flow control with
//! piggybacked/delayed/negative acknowledgements and coarse retransmission
//! timeout, the multi-link frame scheduler, the fence-aware receive path,
//! and the interrupt-minimizing protocol-thread model.
//!
//! # CPU model
//!
//! Each node has two CPUs (the paper dedicates one to the application and
//! one to the protocol, §3). Operation initiation (syscall + copy + frame
//! build + DMA post) is charged to the *application* CPU and delays the
//! issuing task. Everything receive-side and timer-driven is charged to the
//! *protocol* CPU: when work arrives while that CPU is idle, an interrupt +
//! kernel-thread wakeup is charged and counted; work arriving while it is
//! busy is absorbed by polling (§2.6) and counted as coalesced.

use crate::config::SystemConfig;
use crate::memory::AppMemory;
use crate::ops::{Notification, OpFlags, OpHandle, OpKind};
use crate::order::{FragMeta, OpOrdering, Release};
use crate::railhealth::{RailEvent, RailSet, RailState};
use crate::recvseq::{Admit, SeqTracker};
use crate::ring::{GapRing, TxRing, TxSlot};
use crate::rtt::RttEstimator;
use crate::sched::LinkScheduler;
use crate::seqspace::{from_wire, to_wire};
use crate::stats::{CpuSnapshot, ProtoStats};
use bytes::Bytes;
use frame::{FastMap, Frame, FrameFlags, FrameHeader, FrameKind, MacAddr, NackRanges};
use me_trace::{
    EventKind, FlightCode, FlightRecorder, Leg, SpanKey, SpanKind, SpanRecorder, Tracer,
};
use netsim::cpu::CpuTimeline;
use netsim::sync::{sleep_until, Channel};
use netsim::time::Dur;
use netsim::{Network, NicId, RxFrame, Sim, SimTime, TimerId};
use rand::Rng;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Payload of a fragment travelling through the reorder machinery.
#[derive(Debug, Clone)]
struct FragPayload {
    kind: FrameKind,
    addr: u64,
    data: Bytes,
}

/// Metadata retained per receiving operation until it completes.
#[derive(Debug, Clone)]
struct OpMetaInfo {
    kind: FrameKind,
    start_addr: u64,
    total: u64,
    aux: u64,
    notify: bool,
    /// For read requests: the requested length (parsed from the payload).
    req_len: u64,
}

/// One connection's full state (both directions).
struct Conn {
    peer_node: usize,
    peer_conn_id: u32,

    // ---- send direction ----
    /// Next sequence number to assign to a new frame.
    next_seq: u64,
    /// All frames with sequence < `acked` are positively acknowledged.
    acked: u64,
    /// Next sequence to put on the wire (frames in `[acked, sent_up_to)`
    /// are in flight; `[sent_up_to, next_seq)` wait for the window).
    sent_up_to: u64,
    /// In-flight frames `[acked, sent_up_to)` with their transmission
    /// bookkeeping (rail, send time, Karn retransmission mark), in a
    /// window-sized ring: O(1) insert/lookup/removal, no per-frame
    /// allocation.
    tx: TxRing,
    /// Built frames awaiting the window, `[sent_up_to, next_seq)` in
    /// sequence order (the front is always `sent_up_to`). Unbounded — a
    /// large issued operation fragments up front — so it stays a queue
    /// rather than joining the window ring.
    send_queue: VecDeque<Frame>,
    /// Next operation id to assign (dense, issue order).
    next_op: u64,
    /// Most recent forward-fenced op issued (source of fence floors).
    last_fwd_op: Option<u64>,
    /// Write ops awaiting acknowledgement: (last frame seq, op id, handle).
    pending_write_ops: VecDeque<(u64, u64, OpHandle)>,
    /// Read ops awaiting response data, keyed by our read op id.
    pending_reads: FastMap<u64, OpHandle>,
    sched: LinkScheduler,
    /// Last time the cumulative ack advanced (for the coarse timeout).
    last_progress: SimTime,
    rto_armed: bool,
    /// Per-rail health state machine driving the striping eligibility mask.
    rails: RailSet,
    /// Rail that most recently delivered any frame from the peer; control
    /// frames (acks, nacks) are sent back along it (reverse-path routing),
    /// so they avoid rails the peer has stopped using.
    last_rx_rail: Option<usize>,
    /// Adaptive retransmission timeout (RFC 6298-style SRTT/RTTVAR).
    rtt: RttEstimator,

    // ---- receive direction ----
    seqs: SeqTracker,
    order: OpOrdering<FragPayload>,
    op_meta: FastMap<u64, OpMetaInfo>,
    /// Data frames received since the last acknowledgement we sent.
    frames_since_ack: u32,
    ack_timer_armed: bool,
    nack_timer_armed: bool,
    /// Per-gap-start NACK-dedup state (first seen / last NACKed), in a
    /// window-sized ring purged below the cumulative ack on every NACK
    /// check — its live size is window-bounded by construction.
    gaps: GapRing,
    /// Scratch for [`SeqTracker::missing_ranges_into`] on the NACK timer.
    missing_scratch: Vec<(u64, u64)>,
    /// Scratch [`Release`] reused by every `offer_into` on this connection.
    release_scratch: Release<FragPayload>,

    // ---- observability ----
    /// Connection-local slice of the protocol counters: every counter that
    /// can be attributed to one connection is incremented here *and* in the
    /// endpoint-global [`ProtoStats`] (interrupt/coalescing counters stay
    /// global because one interrupt batch mixes connections).
    stats: ProtoStats,
    /// Receive ops currently held back by a fence, keyed by op id →
    /// stall start time. Populated only while an observer (tracer, span
    /// recorder, or flight recorder) is enabled.
    fence_stall_start: FastMap<u64, SimTime>,
}

impl Conn {
    fn new(peer_node: usize, proto: &crate::config::ProtoConfig, nrails: usize) -> Self {
        Self {
            peer_node,
            peer_conn_id: 0,
            next_seq: 0,
            acked: 0,
            sent_up_to: 0,
            tx: TxRing::with_window(proto.window as usize),
            send_queue: VecDeque::new(),
            next_op: 0,
            last_fwd_op: None,
            pending_write_ops: VecDeque::new(),
            pending_reads: FastMap::default(),
            sched: LinkScheduler::new(proto.sched),
            last_progress: SimTime::ZERO,
            rto_armed: false,
            rails: RailSet::new(
                nrails,
                proto.rail_degraded_after,
                proto.rail_dead_after,
                proto.rail_cooldown,
            ),
            last_rx_rail: None,
            rtt: RttEstimator::new(proto.rto_initial, proto.rto_min, proto.rto_max),
            seqs: SeqTracker::with_window(proto.window as usize),
            order: OpOrdering::new(),
            op_meta: FastMap::default(),
            frames_since_ack: 0,
            ack_timer_armed: false,
            nack_timer_armed: false,
            gaps: GapRing::with_window(proto.window as usize),
            missing_scratch: Vec::new(),
            release_scratch: Release::default(),
            stats: ProtoStats::default(),
            fence_stall_start: FastMap::default(),
        }
    }

    /// Unacknowledged frames currently on the wire.
    fn in_flight(&self) -> u64 {
        self.sent_up_to - self.acked
    }
}

/// An event waiting in the NIC's moderated-interrupt queue.
enum ModItem {
    Rx(RxFrame),
    TxComplete,
}

struct EndpointInner {
    node: usize,
    cfg: Rc<SystemConfig>,
    nics: Vec<NicId>,
    memory: AppMemory,
    conns: Vec<Conn>,
    cpu_app: CpuTimeline,
    cpu_proto: CpuTimeline,
    stats: ProtoStats,
    tracer: Tracer,
    /// Causal op-span recorder (disabled unless `SystemConfig::spans` is
    /// non-zero); shared by every endpoint in the cluster.
    spans: SpanRecorder,
    /// Always-on flight recorder (disabled unless `SystemConfig::flight`
    /// is set); shared by every endpoint and the network.
    flight: FlightRecorder,
    /// Events waiting for the moderated interrupt to fire.
    irq_pending: VecDeque<ModItem>,
    /// A moderation timer is armed.
    irq_armed: bool,
    /// The armed moderation timer, cancelled in O(1) when the frame cap
    /// fires the batch early ([`TimerId::NONE`] when none is armed).
    irq_timer: TimerId,
    /// Scratch buffers reused across hot-path calls (drained, never shrunk)
    /// so the steady-state datapath performs no heap allocation.
    send_scratch: Vec<(NicId, Frame)>,
    irq_batch: Vec<ModItem>,
    applies_scratch: Vec<(SimTime, Frame)>,
}

/// A node's MultiEdge protocol instance. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Endpoint {
    sim: Sim,
    net: Network,
    inner: Rc<RefCell<EndpointInner>>,
    notifications: Channel<Notification>,
}

impl Endpoint {
    /// Create the endpoint for `node`, binding its NICs' receive and
    /// transmit-completion handlers.
    pub fn new(
        sim: &Sim,
        net: &Network,
        node: usize,
        nics: Vec<NicId>,
        cfg: Rc<SystemConfig>,
    ) -> Endpoint {
        let tracer = if cfg.trace_ring > 0 {
            Tracer::enabled(cfg.trace_ring)
        } else {
            Tracer::disabled()
        };
        let ep = Endpoint {
            sim: sim.clone(),
            net: net.clone(),
            inner: Rc::new(RefCell::new(EndpointInner {
                node,
                cfg,
                nics: nics.clone(),
                memory: AppMemory::new(),
                conns: Vec::new(),
                cpu_app: CpuTimeline::new(),
                cpu_proto: CpuTimeline::new(),
                stats: ProtoStats::default(),
                tracer,
                spans: SpanRecorder::disabled(),
                flight: FlightRecorder::disabled(),
                irq_pending: VecDeque::new(),
                irq_armed: false,
                irq_timer: TimerId::NONE,
                send_scratch: Vec::new(),
                irq_batch: Vec::new(),
                applies_scratch: Vec::new(),
            })),
            notifications: Channel::new(sim),
        };
        for nic in nics {
            let e = ep.clone();
            net.set_rx_handler(nic, move |_, rx| e.on_rx(rx));
            let e = ep.clone();
            net.set_tx_complete_handler(nic, move |_, _| e.on_tx_complete());
        }
        ep
    }

    /// Build one endpoint per cluster node. When `cfg.spans` or
    /// `cfg.flight` is set, one shared [`SpanRecorder`] / [`FlightRecorder`]
    /// is created for the whole cluster (spans cross nodes, so the recorder
    /// must too), the network is wired into the flight recorder, and the
    /// flight recorder embeds span attributions in its dumps.
    pub fn for_cluster(
        sim: &Sim,
        cluster: &netsim::Cluster,
        cfg: Rc<SystemConfig>,
    ) -> Vec<Endpoint> {
        let spans = if cfg.spans > 0 {
            SpanRecorder::enabled(cfg.spans)
        } else {
            SpanRecorder::disabled()
        };
        let flight = match &cfg.flight {
            Some(fc) => FlightRecorder::enabled(fc.clone()),
            None => FlightRecorder::disabled(),
        };
        if flight.is_enabled() {
            flight.set_span_source(&spans);
            cluster.net.set_flight_recorder(flight.clone());
        }
        cluster
            .nics
            .iter()
            .enumerate()
            .map(|(node, nics)| {
                let ep = Endpoint::new(sim, &cluster.net, node, nics.clone(), cfg.clone());
                ep.set_span_recorder(spans.clone());
                ep.set_flight_recorder(flight.clone());
                ep
            })
            .collect()
    }

    /// This endpoint's node index.
    pub fn node(&self) -> usize {
        self.inner.borrow().node
    }

    /// Set up a connection between two endpoints. Returns the connection id
    /// on each side. (The wire handshake of §2.2 is collapsed to an
    /// instantaneous setup; connection establishment is not evaluated in the
    /// paper.)
    pub fn connect(a: &Endpoint, b: &Endpoint) -> (usize, usize) {
        assert!(
            !Rc::ptr_eq(&a.inner, &b.inner),
            "cannot connect a node to itself"
        );
        let (node_a, node_b) = (a.node(), b.node());
        let ida = {
            let mut ia = a.inner.borrow_mut();
            let conn = Conn::new(node_b, &ia.cfg.proto, ia.nics.len());
            ia.conns.push(conn);
            ia.conns.len() - 1
        };
        let idb = {
            let mut ib = b.inner.borrow_mut();
            let conn = Conn::new(node_a, &ib.cfg.proto, ib.nics.len());
            ib.conns.push(conn);
            ib.conns.len() - 1
        };
        a.inner.borrow_mut().conns[ida].peer_conn_id = idb as u32;
        b.inner.borrow_mut().conns[idb].peer_conn_id = ida as u32;
        (ida, idb)
    }

    /// Half of [`Endpoint::connect`] for a peer simulated in another shard,
    /// where the peer's `Endpoint` handle cannot be touched (it is
    /// `Rc`-backed and lives on another thread). Both sides must call this
    /// with mutually consistent arguments; connection ids are deterministic
    /// (`conns.len()` in call order), so a deterministic pairing scheme —
    /// e.g. every node connecting to its mesh peers in ascending node
    /// order — lets each side compute `peer_conn_id` without communication.
    pub fn connect_remote(&self, peer_node: usize, peer_conn_id: usize) -> usize {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.node != peer_node, "cannot connect a node to itself");
        let mut conn = Conn::new(peer_node, &inner.cfg.proto, inner.nics.len());
        conn.peer_conn_id = peer_conn_id as u32;
        inner.conns.push(conn);
        inner.conns.len() - 1
    }

    /// Peer node of connection `conn`.
    pub fn conn_peer(&self, conn: usize) -> usize {
        self.inner.borrow().conns[conn].peer_node
    }

    /// The simulator this endpoint runs on (for crate-internal samplers).
    pub(crate) fn sim_handle(&self) -> &Sim {
        &self.sim
    }

    /// Number of NICs (rails) this endpoint stripes onto.
    pub(crate) fn nic_count(&self) -> usize {
        self.inner.borrow().nics.len()
    }

    /// Health state of every rail, from connection `conn`'s sending side.
    pub fn rail_states(&self, conn: usize) -> Vec<RailState> {
        let inner = self.inner.borrow();
        let c = &inner.conns[conn];
        (0..c.rails.len()).map(|r| c.rails.state(r)).collect()
    }

    /// Number of rails connection `conn` currently stripes onto (not dead).
    pub fn active_rails(&self, conn: usize) -> usize {
        self.inner.borrow().conns[conn].rails.active_rails()
    }

    /// Connection `conn`'s current adaptive retransmission timeout
    /// (including any accumulated backoff).
    pub fn current_rto(&self, conn: usize) -> Dur {
        self.inner.borrow().conns[conn].rtt.current_rto()
    }

    /// Connection `conn`'s smoothed RTT, once at least one sample exists.
    pub fn srtt(&self, conn: usize) -> Option<Dur> {
        self.inner.borrow().conns[conn].rtt.srtt()
    }

    /// Health state of one rail, from connection `conn`'s sending side.
    /// The allocation-free sibling of [`Endpoint::rail_states`], for
    /// samplers that poll per rail on the datapath.
    pub fn rail_state(&self, conn: usize, rail: usize) -> RailState {
        self.inner.borrow().conns[conn].rails.state(rail)
    }

    /// Sequence-space bytes connection `conn` has sent but not yet had
    /// acknowledged — the send-window occupancy.
    pub fn conn_in_flight(&self, conn: usize) -> u64 {
        self.inner.borrow().conns[conn].in_flight()
    }

    /// Connection `conn`'s current exponential-backoff level (0 = the RTO
    /// has not backed off).
    pub fn rto_backoff(&self, conn: usize) -> u32 {
        self.inner.borrow().conns[conn].rtt.backoff()
    }

    /// Transmit backlog of this node's `rail`-th NIC, in nanoseconds of
    /// serialization time still queued.
    pub fn nic_backlog_ns(&self, rail: usize) -> u64 {
        let inner = self.inner.borrow();
        self.net.nic_tx_backlog(inner.nics[rail]).as_nanos()
    }

    /// Write directly into this node's local memory (models the application
    /// touching its own address space; free of protocol cost).
    pub fn mem_write(&self, addr: u64, data: &[u8]) {
        self.inner.borrow_mut().memory.write(addr, data);
    }

    /// Read from this node's local memory.
    pub fn mem_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.inner.borrow().memory.read_vec(addr, len)
    }

    /// The paper's `RDMA_operation(conn, remote_va, local_va, size, WRITE,
    /// flags)`: asynchronously copy `len` bytes from local `local_addr` to
    /// `remote_addr` in the peer's address space. The returned future
    /// resolves (with the operation handle) once the *initiation* cost has
    /// been paid; completion is tracked by the handle.
    pub async fn write(
        &self,
        conn: usize,
        local_addr: u64,
        remote_addr: u64,
        len: usize,
        flags: OpFlags,
    ) -> OpHandle {
        let data = self.inner.borrow().memory.read_vec(local_addr, len);
        self.write_bytes(conn, remote_addr, data, flags).await
    }

    /// Like [`Endpoint::write`] but the payload is provided directly (models
    /// a user buffer that is not in the shared address space).
    pub async fn write_bytes(
        &self,
        conn: usize,
        remote_addr: u64,
        data: Vec<u8>,
        flags: OpFlags,
    ) -> OpHandle {
        let len = data.len();
        let handle = OpHandle::new(&self.sim, OpKind::Write, len);
        let created_ns = self.sim.now().as_nanos();
        let end = {
            let mut inner = self.inner.borrow_mut();
            let cm = inner.cfg.cost.clone();
            let nframes = len.div_ceil(inner.cfg.proto.max_payload).max(1) as u64;
            let mut per_frame = cm.frame_build + cm.dma_post;
            if cm.unmaskable_tx_irq {
                per_frame += cm.tx_irq_send_tax;
            }
            let cost = cm.syscall + cm.copy_cost(len) + per_frame * nframes;
            inner.stats.ops_write += 1;
            inner.stats.bytes_written += len as u64;
            inner.conns[conn].stats.ops_write += 1;
            inner.conns[conn].stats.bytes_written += len as u64;
            let (_, end) = inner.cpu_app.reserve(self.sim.now(), cost);
            end
        };
        let ep = self.clone();
        let h = handle.clone();
        self.sim.schedule_at(end, move |_| {
            ep.issue_write(conn, remote_addr, Bytes::from(data), flags, h, created_ns);
        });
        sleep_until(&self.sim, end).await;
        handle
    }

    /// The paper's remote read: asynchronously fetch `len` bytes from
    /// `remote_addr` in the peer's address space into local `local_addr`.
    /// The handle completes when all response data has been applied locally.
    pub async fn read(
        &self,
        conn: usize,
        local_addr: u64,
        remote_addr: u64,
        len: usize,
        flags: OpFlags,
    ) -> OpHandle {
        assert!(len > 0, "zero-length remote read");
        let handle = OpHandle::new(&self.sim, OpKind::Read, len);
        let created_ns = self.sim.now().as_nanos();
        let end = {
            let mut inner = self.inner.borrow_mut();
            let cm = inner.cfg.cost.clone();
            let cost = cm.syscall + cm.frame_build + cm.dma_post;
            inner.stats.ops_read += 1;
            inner.stats.bytes_read += len as u64;
            inner.conns[conn].stats.ops_read += 1;
            inner.conns[conn].stats.bytes_read += len as u64;
            let (_, end) = inner.cpu_app.reserve(self.sim.now(), cost);
            end
        };
        let ep = self.clone();
        let h = handle.clone();
        self.sim.schedule_at(end, move |_| {
            ep.issue_read(conn, local_addr, remote_addr, len, flags, h, created_ns);
        });
        sleep_until(&self.sim, end).await;
        handle
    }

    /// Await the next completion notification (remote writes issued with
    /// [`OpFlags::notify`] land here once fully applied locally). Resolves
    /// `None` once [`Endpoint::close_notifications`] has been called and the
    /// queue has drained.
    pub async fn next_notification(&self) -> Option<Notification> {
        self.notifications.pop().await
    }

    /// Stop notification delivery: pending notifications drain, then
    /// [`Endpoint::next_notification`] resolves `None`. Used by higher
    /// layers (the DSM) to terminate their service loops.
    pub fn close_notifications(&self) {
        self.notifications.close();
    }

    /// Non-blocking notification poll.
    pub fn try_notification(&self) -> Option<Notification> {
        self.notifications.try_pop()
    }

    /// Test hook: per-connection hot-path state sizes that the window must
    /// bound — (in-flight tx frames, live NACK-dedup gap entries, frames
    /// held out of order by the receiver).
    #[cfg(test)]
    fn window_state_sizes(&self, conn: usize) -> (usize, usize, usize) {
        let inner = self.inner.borrow();
        let c = &inner.conns[conn];
        (c.tx.len(), c.gaps.len(), c.seqs.ooo_held())
    }

    /// Snapshot of protocol statistics (reorder peak folded in).
    pub fn stats(&self) -> ProtoStats {
        let inner = self.inner.borrow();
        let mut s = inner.stats;
        for c in &inner.conns {
            s.reorder_peak = s.reorder_peak.max(c.order.buffered_peak() as u64);
        }
        s
    }

    /// Snapshot of the connection-local slice of the protocol statistics.
    ///
    /// Every connection-attributable counter (operations, frames sent and
    /// received, acks, nacks, retransmissions) is maintained both here and
    /// in the endpoint-global [`Endpoint::stats`]; summing this over all
    /// connections reproduces the global value for those counters. The
    /// interrupt/coalescing counters and `corrupt_frames` are only global:
    /// one moderated interrupt serves a batch that may mix connections, and
    /// a corrupted frame's header cannot be trusted for attribution.
    pub fn conn_stats(&self, conn: usize) -> ProtoStats {
        let inner = self.inner.borrow();
        let c = &inner.conns[conn];
        let mut s = c.stats;
        s.reorder_peak = c.order.buffered_peak() as u64;
        s
    }

    /// Number of connections on this endpoint.
    pub fn conn_count(&self) -> usize {
        self.inner.borrow().conns.len()
    }

    /// This endpoint's tracing handle (disabled unless the
    /// [`SystemConfig::trace_ring`](crate::SystemConfig) knob is non-zero).
    /// All clones share one ring and one histogram set; hand a clone to
    /// [`netsim::Network::set_tracer`] to merge wire-level events into the
    /// same timeline.
    pub fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// This endpoint's span recorder (disabled unless
    /// [`SystemConfig::spans`](crate::SystemConfig) is non-zero).
    /// [`Endpoint::for_cluster`] shares one recorder across the cluster so a
    /// span's sender- and receiver-side milestones land in the same record.
    pub fn span_recorder(&self) -> SpanRecorder {
        self.inner.borrow().spans.clone()
    }

    /// Install a (shared) span recorder on this endpoint.
    pub fn set_span_recorder(&self, spans: SpanRecorder) {
        self.inner.borrow_mut().spans = spans;
    }

    /// This endpoint's flight recorder (disabled unless
    /// [`SystemConfig::flight`](crate::SystemConfig) is set).
    pub fn flight_recorder(&self) -> FlightRecorder {
        self.inner.borrow().flight.clone()
    }

    /// Install a (shared) flight recorder on this endpoint.
    pub fn set_flight_recorder(&self, flight: FlightRecorder) {
        self.inner.borrow_mut().flight = flight;
    }

    /// Snapshot of CPU busy time.
    pub fn cpu(&self) -> CpuSnapshot {
        let inner = self.inner.borrow();
        CpuSnapshot {
            app_busy: inner.cpu_app.busy_time(),
            proto_busy: inner.cpu_proto.busy_time(),
        }
    }

    /// Charge `cost` of application compute to this node's application CPU
    /// (used by workloads to model computation between operations).
    pub fn charge_app(&self, cost: Dur) {
        self.inner.borrow_mut().cpu_app.account(cost);
    }

    // ------------------------------------------------------------------
    // Issue path (runs at the end of the charged initiation slot)
    // ------------------------------------------------------------------

    fn issue_write(
        &self,
        conn: usize,
        remote_addr: u64,
        data: Bytes,
        flags: OpFlags,
        handle: OpHandle,
        created_ns: u64,
    ) {
        let sends = {
            let mut inner = self.inner.borrow_mut();
            let force = inner.cfg.proto.force_ordered;
            let max_payload = inner.cfg.proto.max_payload;
            let node = inner.node;
            let c = &mut inner.conns[conn];
            let mut flags = flags;
            if force {
                flags.fence_backward = true;
                flags.fence_forward = true;
            }
            let op_id = c.next_op;
            c.next_op += 1;
            let fence_floor = c.last_fwd_op.map_or(0, |o| o + 1);
            if flags.fence_forward {
                c.last_fwd_op = Some(op_id);
            }
            let total = data.len();
            let nfrags = total.div_ceil(max_payload).max(1);
            let mut last_seq = 0;
            for i in 0..nfrags {
                let off = i * max_payload;
                let frag = data.slice(off..total.min(off + max_payload));
                let mut fl = FrameFlags::empty();
                if flags.fence_backward {
                    fl |= FrameFlags::FENCE_BACKWARD;
                }
                if flags.fence_forward {
                    fl |= FrameFlags::FENCE_FORWARD;
                }
                if flags.notify {
                    fl |= FrameFlags::NOTIFY;
                }
                if i == 0 {
                    fl |= FrameFlags::FIRST_FRAGMENT;
                }
                if i == nfrags - 1 {
                    fl |= FrameFlags::LAST_FRAGMENT;
                }
                let seq = c.next_seq;
                c.next_seq += 1;
                last_seq = seq;
                let header = FrameHeader {
                    kind: FrameKind::Data,
                    flags: fl,
                    conn: c.peer_conn_id,
                    seq: to_wire(seq),
                    ack: 0, // filled at transmit time
                    op_id: to_wire(op_id),
                    op_total_len: total as u32,
                    fence_floor: to_wire(fence_floor),
                    remote_addr: remote_addr + off as u64,
                    aux: 0,
                };
                c.send_queue.push_back(Frame {
                    // src/dst rewritten at transmit time (rail choice)
                    src: MacAddr::new(node as u16, 0),
                    dst: MacAddr::new(c.peer_node as u16, 0),
                    header,
                    payload: frag,
                });
            }
            c.pending_write_ops.push_back((last_seq, op_id, handle));
            inner.tracer.emit(
                self.sim.now().as_nanos(),
                Some(conn as u32),
                None,
                EventKind::OpIssue { op: op_id },
            );
            inner.spans.op_issued(
                SpanKey::new(node, conn, to_wire(op_id)),
                SpanKind::Write,
                created_ns,
                self.sim.now().as_nanos(),
                nfrags as u32,
                total as u64,
            );
            inner.flight.note(
                FlightCode::OpIssue,
                node,
                Some(conn),
                None,
                u64::from(to_wire(op_id)),
                total as u64,
                self.sim.now().as_nanos(),
            );
            inner.pump_send(conn, &self.net, &self.sim, false)
        };
        self.dispatch(sends);
        self.ensure_rto(conn);
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_read(
        &self,
        conn: usize,
        local_addr: u64,
        remote_addr: u64,
        len: usize,
        flags: OpFlags,
        handle: OpHandle,
        created_ns: u64,
    ) {
        let sends = {
            let mut inner = self.inner.borrow_mut();
            let force = inner.cfg.proto.force_ordered;
            let node = inner.node;
            inner.stats.read_req_frames_sent += 1;
            let c = &mut inner.conns[conn];
            c.stats.read_req_frames_sent += 1;
            let mut flags = flags;
            if force {
                flags.fence_backward = true;
                flags.fence_forward = true;
            }
            let op_id = c.next_op;
            c.next_op += 1;
            let fence_floor = c.last_fwd_op.map_or(0, |o| o + 1);
            if flags.fence_forward {
                c.last_fwd_op = Some(op_id);
            }
            let mut fl = FrameFlags::FIRST_FRAGMENT | FrameFlags::LAST_FRAGMENT;
            if flags.fence_backward {
                fl |= FrameFlags::FENCE_BACKWARD;
            }
            if flags.fence_forward {
                fl |= FrameFlags::FENCE_FORWARD;
            }
            let seq = c.next_seq;
            c.next_seq += 1;
            let header = FrameHeader {
                kind: FrameKind::ReadRequest,
                flags: fl,
                conn: c.peer_conn_id,
                seq: to_wire(seq),
                ack: 0,
                op_id: to_wire(op_id),
                op_total_len: 0,
                fence_floor: to_wire(fence_floor),
                remote_addr,
                aux: local_addr,
            };
            // Payload carries the requested length.
            let payload = Bytes::copy_from_slice(&(len as u64).to_le_bytes());
            c.send_queue.push_back(Frame {
                src: MacAddr::new(node as u16, 0),
                dst: MacAddr::new(c.peer_node as u16, 0),
                header,
                payload,
            });
            c.pending_reads.insert(op_id, handle);
            inner.tracer.emit(
                self.sim.now().as_nanos(),
                Some(conn as u32),
                None,
                EventKind::OpIssue { op: op_id },
            );
            inner.spans.op_issued(
                SpanKey::new(node, conn, to_wire(op_id)),
                SpanKind::Read,
                created_ns,
                self.sim.now().as_nanos(),
                1,
                len as u64,
            );
            inner.flight.note(
                FlightCode::OpIssue,
                node,
                Some(conn),
                None,
                u64::from(to_wire(op_id)),
                len as u64,
                self.sim.now().as_nanos(),
            );
            inner.pump_send(conn, &self.net, &self.sim, false)
        };
        self.dispatch(sends);
        self.ensure_rto(conn);
    }

    /// Put frames on their NICs, then hand the drained vector back to the
    /// send scratch so steady-state sends reuse its capacity.
    fn dispatch(&self, mut sends: Vec<(NicId, Frame)>) {
        for (nic, f) in sends.drain(..) {
            self.net.nic_send(nic, f);
        }
        let mut inner = self.inner.borrow_mut();
        if sends.capacity() > inner.send_scratch.capacity() {
            inner.send_scratch = sends;
        }
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Per-frame receive processing cost (header parse + copy to user).
    fn rx_cost(cm: &crate::config::CostModel, rx: &RxFrame) -> Dur {
        let mut cost = cm.rx_frame_proc;
        if rx.frame.is_data() {
            cost += cm.copy_cost(rx.frame.payload.len());
        }
        cost
    }

    /// NIC receive callback.
    ///
    /// If the protocol thread is busy, the frame is absorbed by its polling
    /// loop (§2.6) at zero interrupt cost. If the thread is idle, the NIC's
    /// interrupt *moderation* hardware batches events: a timer of
    /// `rx_irq_delay` is armed (or an early fire happens at `rx_irq_frames`
    /// pending events), and one interrupt then processes the whole batch.
    fn on_rx(&self, rx: RxFrame) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        // Physical arrival at the NIC: stamped before the poll/moderate
        // decision so interrupt-moderation delay shows up as RxProcess time
        // in the attribution. Corrupted frames carry untrustworthy headers
        // and are never admitted, so they are not stamped.
        if !rx.corrupted && inner.spans.is_enabled() {
            inner.span_arrival(&rx.frame, now.as_nanos());
        }
        if inner.cpu_proto.available_at() > now {
            // Protocol thread active: polled, no interrupt.
            inner.stats.rx_coalesced += 1;
            inner
                .tracer
                .emit(now.as_nanos(), None, None, EventKind::RxPoll { batch: 1 });
            let cost = Self::rx_cost(&inner.cfg.cost, &rx);
            let (_, end) = inner.cpu_proto.reserve(now, cost);
            if rx.corrupted {
                inner.stats.corrupt_frames += 1;
                return;
            }
            drop(inner);
            let ep = self.clone();
            self.sim.schedule_at(end, move |_| ep.apply_rx(rx.frame));
        } else {
            inner.irq_pending.push_back(ModItem::Rx(rx));
            self.moderate(inner);
        }
    }

    /// Transmit-completion callback (send DMA buffer free): same
    /// poll-or-moderate decision as the receive path (the NIC shares one
    /// interrupt line).
    fn on_tx_complete(&self) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        if inner.cpu_proto.available_at() > now {
            inner.stats.tx_coalesced += 1;
            inner
                .tracer
                .emit(now.as_nanos(), None, None, EventKind::TxPoll);
            let cost = inner.cfg.cost.tx_complete_proc;
            inner.cpu_proto.reserve(now, cost);
        } else {
            inner.irq_pending.push_back(ModItem::TxComplete);
            self.moderate(inner);
        }
    }

    /// Decide whether the pending batch fires now (frame cap) or waits for
    /// the moderation timer.
    fn moderate(&self, mut inner: std::cell::RefMut<'_, EndpointInner>) {
        if inner.irq_pending.len() >= inner.cfg.cost.rx_irq_frames {
            inner.irq_armed = false;
            // Cancel any armed timer in O(1); its slot fires as a no-op.
            let timer = std::mem::replace(&mut inner.irq_timer, TimerId::NONE);
            drop(inner);
            self.sim.cancel_timer(timer);
            self.fire_irq();
        } else if !inner.irq_armed {
            inner.irq_armed = true;
            let delay = inner.cfg.cost.rx_irq_delay;
            drop(inner);
            let ep = self.clone();
            let id = self.sim.schedule_timer_in(delay, move |_| {
                let fire = {
                    let mut inner = ep.inner.borrow_mut();
                    inner.irq_timer = TimerId::NONE;
                    if inner.irq_armed {
                        inner.irq_armed = false;
                        true
                    } else {
                        false
                    }
                };
                if fire {
                    ep.fire_irq();
                }
            });
            self.inner.borrow_mut().irq_timer = id;
        }
    }

    /// One interrupt processes the entire pending batch.
    fn fire_irq(&self) {
        let applies = {
            let mut inner = self.inner.borrow_mut();
            if inner.irq_pending.is_empty() {
                return;
            }
            let mut batch = std::mem::take(&mut inner.irq_batch);
            batch.clear();
            while let Some(item) = inner.irq_pending.pop_front() {
                batch.push(item);
            }
            let n_rx = batch
                .iter()
                .filter(|i| matches!(i, ModItem::Rx(_)))
                .count() as u64;
            let n_tx = batch.len() as u64 - n_rx;
            // One interrupt for the batch; attribute it to the receive path
            // if any receive event is present.
            let now = self.sim.now();
            if n_rx > 0 {
                inner.stats.rx_interrupts += 1;
                inner.stats.rx_coalesced += n_rx - 1;
                inner.stats.tx_coalesced += n_tx;
                inner.tracer.emit(
                    now.as_nanos(),
                    None,
                    None,
                    EventKind::RxInterrupt {
                        batch: batch.len() as u32,
                    },
                );
            } else {
                inner.stats.tx_interrupts += 1;
                inner.stats.tx_coalesced += n_tx - 1;
                inner
                    .tracer
                    .emit(now.as_nanos(), None, None, EventKind::TxInterrupt);
            }
            let cm = inner.cfg.cost.clone();
            inner.cpu_proto.reserve(now, cm.interrupt + cm.kthread_wake);
            let mut applies = std::mem::take(&mut inner.applies_scratch);
            applies.clear();
            for item in batch.drain(..) {
                match item {
                    ModItem::Rx(rx) => {
                        let cost = Self::rx_cost(&cm, &rx);
                        let (_, end) = inner.cpu_proto.reserve(now, cost);
                        if rx.corrupted {
                            inner.stats.corrupt_frames += 1;
                        } else {
                            applies.push((end, rx.frame));
                        }
                    }
                    ModItem::TxComplete => {
                        inner.cpu_proto.reserve(now, cm.tx_complete_proc);
                    }
                }
            }
            inner.irq_batch = batch;
            applies
        };
        let mut applies = applies;
        for (at, f) in applies.drain(..) {
            let ep = self.clone();
            self.sim.schedule_at(at, move |_| ep.apply_rx(f));
        }
        self.inner.borrow_mut().applies_scratch = applies;
    }

    /// Apply a received frame to protocol state (runs at the end of its
    /// charged processing slot).
    fn apply_rx(&self, f: Frame) {
        let now = self.sim.now();
        let conn = f.header.conn as usize;
        {
            // Remember which rail delivered this frame: control frames are
            // sent back along the reverse path, so during a rail outage
            // acks and nacks follow the rails that demonstrably work
            // instead of blackholing on the dead one.
            let mut inner = self.inner.borrow_mut();
            let rail = f.dst.rail as usize;
            if rail < inner.nics.len() {
                inner.conns[conn].last_rx_rail = Some(rail);
            }
        }
        // 1. Piggybacked cumulative ack (every frame carries one).
        self.process_ack(conn, f.header.ack, f.dst.rail as u32, now);
        match f.header.kind {
            FrameKind::Ack => {
                let mut inner = self.inner.borrow_mut();
                inner.stats.ctrl_frames_recv += 1;
                inner.conns[conn].stats.ctrl_frames_recv += 1;
            }
            FrameKind::Nack => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.ctrl_frames_recv += 1;
                    inner.conns[conn].stats.ctrl_frames_recv += 1;
                }
                self.process_nack(conn, &f);
            }
            FrameKind::Data | FrameKind::ReadResponse | FrameKind::ReadRequest => {
                self.process_data(conn, f, now);
            }
            FrameKind::Connect | FrameKind::ConnectAck => {
                // Setup collapses to Endpoint::connect in the simulator.
            }
        }
    }

    /// Advance the send window on a cumulative ack; complete write ops and
    /// transmit window-released frames. `rail` is the rail that delivered
    /// the frame carrying the ack (for event attribution).
    fn process_ack(&self, conn: usize, wire_ack: u32, rail: u32, now: SimTime) {
        let (sends, completed) = {
            let mut inner = self.inner.borrow_mut();
            let c = &mut inner.conns[conn];
            let ack = from_wire(c.acked, wire_ack);
            if ack <= c.acked || ack > c.next_seq {
                return;
            }
            let old_acked = c.acked;
            c.acked = ack;
            c.last_progress = now;
            let old_sent = c.sent_up_to;
            c.sent_up_to = c.sent_up_to.max(ack);
            // Acks can only cover transmitted frames, but stay defensive:
            // drop any queued-but-unsent frames the ack just covered.
            for _ in old_sent..c.sent_up_to {
                c.send_queue.pop_front();
            }
            // Credit the rails that carried the newly-covered frames, and
            // take an RTT sample from the freshest first-transmission frame
            // (Karn's algorithm: retransmitted frames have ambiguous acks).
            let mut rail_events: Vec<RailEvent> = Vec::new();
            let mut rtt_sample = None;
            for seq in old_acked..ack {
                let Some(slot) = c.tx.remove(seq) else {
                    continue;
                };
                if !slot.retransmitted {
                    rtt_sample = Some(now.since(slot.sent_at));
                }
                if let Some(ev) = c.rails.on_ack(slot.rail, seq) {
                    rail_events.push(ev);
                }
            }
            match rtt_sample {
                Some(s) => c.rtt.on_sample(s),
                None => c.rtt.on_progress(),
            }
            let mut completed = Vec::new();
            while c
                .pending_write_ops
                .front()
                .is_some_and(|(last, _, _)| *last < ack)
            {
                let (_, op, h) = c.pending_write_ops.pop_front().expect("checked front");
                completed.push((op, h));
            }
            inner.tracer.emit(
                now.as_nanos(),
                Some(conn as u32),
                Some(rail),
                EventKind::AckPiggyback { ack },
            );
            if inner.spans.is_enabled() {
                let node = inner.node;
                for (op, _) in &completed {
                    inner
                        .spans
                        .ack_rx(SpanKey::new(node, conn, to_wire(*op)), now.as_nanos());
                }
            }
            for ev in rail_events {
                let RailEvent::Readmitted(rail) = ev else {
                    continue;
                };
                inner.stats.rail_up_events += 1;
                inner.conns[conn].stats.rail_up_events += 1;
                inner.tracer.emit(
                    now.as_nanos(),
                    Some(conn as u32),
                    Some(rail as u32),
                    EventKind::RailUp { rail: rail as u32 },
                );
            }
            let sends = inner.pump_send(conn, &self.net, &self.sim, true);
            (sends, completed)
        };
        self.dispatch(sends);
        if !completed.is_empty() {
            let (wake, tracer, spans, flight, node) = {
                let mut inner = self.inner.borrow_mut();
                let wake = inner.cfg.cost.app_wake;
                inner.cpu_app.account(wake * completed.len() as u64);
                (
                    wake,
                    inner.tracer.clone(),
                    inner.spans.clone(),
                    inner.flight.clone(),
                    inner.node,
                )
            };
            let at = now + wake;
            for (op, h) in completed {
                let tracer = tracer.clone();
                let spans = spans.clone();
                let flight = flight.clone();
                self.sim.schedule_at(at, move |sim| {
                    h.complete(sim.now());
                    spans.op_completed(SpanKey::new(node, conn, to_wire(op)), sim.now().as_nanos());
                    flight.note(
                        FlightCode::OpComplete,
                        node,
                        Some(conn),
                        None,
                        u64::from(to_wire(op)),
                        h.latency().map_or(0, |l| l.as_nanos()),
                        sim.now().as_nanos(),
                    );
                    if tracer.is_enabled() {
                        if let Some(lat) = h.latency() {
                            tracer.op_latency(conn as u32, lat.as_nanos());
                        }
                        tracer.emit(
                            sim.now().as_nanos(),
                            Some(conn as u32),
                            None,
                            EventKind::OpComplete { op },
                        );
                    }
                });
            }
        }
    }

    /// Selective retransmission in response to a NACK.
    fn process_nack(&self, conn: usize, f: &Frame) {
        let ranges = NackRanges::decode(&f.payload);
        let sends = {
            let mut inner = self.inner.borrow_mut();
            let window = inner.cfg.proto.window;
            let per_frame = inner.cfg.cost.frame_build + inner.cfg.cost.dma_post;
            let mut to_resend: Vec<u64> = Vec::new();
            {
                let c = &inner.conns[conn];
                let acked = c.acked;
                'outer: for &(wf, wt) in &ranges.ranges {
                    let from = from_wire(acked, wf);
                    let to = from_wire(acked, wt);
                    if to <= from {
                        continue;
                    }
                    for seq in from..to.min(from + window) {
                        if c.tx.contains(seq) {
                            to_resend.push(seq);
                        }
                        if to_resend.len() as u64 >= window {
                            break 'outer;
                        }
                    }
                }
            }
            let now = self.sim.now();
            // Each NACKed frame is a loss attributed to the rail that last
            // carried it — debit before the retransmit reassigns the rail.
            let mut rail_events: Vec<RailEvent> = Vec::new();
            {
                let c = &mut inner.conns[conn];
                for &seq in &to_resend {
                    let rail = c.tx.get(seq).map(|s| s.rail);
                    if let Some(rail) = rail {
                        if let Some(ev) = c.rails.on_loss(rail, seq, now) {
                            rail_events.push(ev);
                        }
                    }
                }
            }
            for ev in rail_events {
                let RailEvent::Dead(rail) = ev else {
                    continue;
                };
                inner.stats.rail_down_events += 1;
                inner.conns[conn].stats.rail_down_events += 1;
                inner.tracer.emit(
                    now.as_nanos(),
                    Some(conn as u32),
                    Some(rail as u32),
                    EventKind::RailDown { rail: rail as u32 },
                );
                let node = inner.node;
                inner
                    .flight
                    .rail_death(node, Some(conn), rail as u32, now.as_nanos());
            }
            let n = to_resend.len() as u64;
            inner.stats.retransmits_nack += n;
            inner.conns[conn].stats.retransmits_nack += n;
            inner.tracer.emit(
                now.as_nanos(),
                Some(conn as u32),
                Some(f.dst.rail as u32),
                EventKind::NackRecv {
                    gaps: ranges.ranges.len() as u32,
                },
            );
            inner.cpu_proto.account(per_frame * n);
            let mut sends = Vec::with_capacity(to_resend.len());
            for seq in to_resend {
                if let Some(fr) = inner.prepare_transmit(conn, seq, true, &self.net, &self.sim) {
                    sends.push(fr);
                }
            }
            sends
        };
        self.dispatch(sends);
    }

    /// Handle a data-bearing frame: sequence admission, fences, application
    /// to memory, notifications, read service, acknowledgement policy.
    fn process_data(&self, conn: usize, f: Frame, now: SimTime) {
        let mut notif: Vec<Notification> = Vec::new();
        // (read address at this node, initiator response buffer, length,
        //  initiator read-op id)
        let mut read_serves: Vec<(u64, u64, u64, u64)> = Vec::new();
        let mut read_completions: Vec<(u64, OpHandle)> = Vec::new();
        let mut duplicate = false;
        let mut send_ack_now = false;
        let mut arm_ack_timer = false;
        let mut arm_nack = false;
        {
            let mut inner = self.inner.borrow_mut();
            let ack_every = inner.cfg.proto.ack_every;
            let peer = inner.conns[conn].peer_node;
            let traced = inner.tracer.is_enabled();
            let observed = traced || inner.spans.is_enabled() || inner.flight.is_enabled();
            let (admit, seq) = {
                let c = &mut inner.conns[conn];
                let seq = from_wire(c.seqs.cumulative(), f.header.seq);
                (c.seqs.admit(seq), seq)
            };
            match admit {
                Admit::Duplicate => {
                    inner.stats.dup_frames_recv += 1;
                    inner.conns[conn].stats.dup_frames_recv += 1;
                    duplicate = true;
                }
                Admit::New { in_order } => {
                    let bytes = if f.header.kind == FrameKind::ReadRequest {
                        0
                    } else {
                        f.payload.len() as u64
                    };
                    inner.stats.data_frames_recv += 1;
                    inner.stats.data_bytes_recv += bytes;
                    inner.conns[conn].stats.data_frames_recv += 1;
                    inner.conns[conn].stats.data_bytes_recv += bytes;
                    if !in_order {
                        inner.stats.ooo_arrivals += 1;
                        inner.conns[conn].stats.ooo_arrivals += 1;
                    }
                    inner.tracer.emit(
                        now.as_nanos(),
                        Some(conn as u32),
                        Some(f.dst.rail as u32),
                        EventKind::FrameRecv { seq, in_order },
                    );
                    inner.flight.note(
                        FlightCode::FrameRecv,
                        inner.node,
                        Some(conn),
                        Some(f.dst.rail as u32),
                        seq,
                        u64::from(in_order),
                        now.as_nanos(),
                    );
                    if inner.spans.is_enabled() {
                        inner.span_admit(conn, &f, seq, now.as_nanos());
                        let cum = inner.conns[conn].seqs.cumulative();
                        let node = inner.node;
                        inner.spans.cum_advanced(node, conn, cum, now.as_nanos());
                    }
                }
            }
            if !duplicate {
                // Reconstruct op-level fields and run the fence machinery.
                let (mut release, stalled_op) = {
                    let c = &mut inner.conns[conn];
                    let op_id = from_wire(c.order.applied_below(), f.header.op_id);
                    let fence_floor = from_wire(c.order.applied_below(), f.header.fence_floor);
                    let meta = FragMeta {
                        op_id,
                        op_total: f.header.op_total_len as u64,
                        fence_floor,
                        fence_backward: f.header.flags.contains(FrameFlags::FENCE_BACKWARD),
                        len: if f.header.kind == FrameKind::ReadRequest {
                            0
                        } else {
                            f.payload.len() as u64
                        },
                    };
                    let entry = c.op_meta.entry(op_id).or_insert_with(|| OpMetaInfo {
                        kind: f.header.kind,
                        start_addr: f.header.remote_addr,
                        total: meta.op_total,
                        aux: f.header.aux,
                        notify: f.header.flags.contains(FrameFlags::NOTIFY),
                        req_len: if f.header.kind == FrameKind::ReadRequest {
                            u64::from_le_bytes(
                                f.payload[..8].try_into().expect("read request payload"),
                            )
                        } else {
                            0
                        },
                    });
                    entry.start_addr = entry.start_addr.min(f.header.remote_addr);
                    let payload = FragPayload {
                        kind: f.header.kind,
                        addr: f.header.remote_addr,
                        data: f.payload.clone(),
                    };
                    let buffered_before = c.order.buffered();
                    let mut release = std::mem::take(&mut c.release_scratch);
                    c.order.offer_into(meta, payload, &mut release);
                    // The fragment was held back iff the buffer count grew.
                    let stalled_op = if c.order.buffered() > buffered_before {
                        if observed {
                            c.fence_stall_start.entry(op_id).or_insert(now);
                        }
                        Some(op_id)
                    } else {
                        None
                    };
                    (release, stalled_op)
                };
                if observed {
                    if traced {
                        if let Some(op) = stalled_op {
                            inner.tracer.emit(
                                now.as_nanos(),
                                Some(conn as u32),
                                None,
                                EventKind::FenceStall { op },
                            );
                        }
                    }
                    let released: Vec<(u64, u64)> = {
                        let c = &mut inner.conns[conn];
                        release
                            .apply
                            .iter()
                            .filter_map(|(m, _)| {
                                c.fence_stall_start
                                    .remove(&m.op_id)
                                    .map(|start| (m.op_id, now.since(start).as_nanos()))
                            })
                            .collect()
                    };
                    for (op, stalled_ns) in released {
                        if traced {
                            inner.tracer.emit(
                                now.as_nanos(),
                                Some(conn as u32),
                                None,
                                EventKind::FenceRelease { op, stalled_ns },
                            );
                            inner.tracer.fence_stall(conn as u32, stalled_ns);
                        }
                        // Attribute the stall to the right span leg: a held
                        // write delivery is informational (acking is not
                        // blocked), a held read request delays the serve, a
                        // held read response delays the initiator's release.
                        if inner.spans.is_enabled() {
                            let c = &inner.conns[conn];
                            if let Some(mi) = c.op_meta.get(&op) {
                                let origin = SpanKey::new(
                                    c.peer_node,
                                    c.peer_conn_id as usize,
                                    to_wire(op),
                                );
                                match mi.kind {
                                    FrameKind::Data => {
                                        inner.spans.delivered(origin, now.as_nanos(), stalled_ns);
                                    }
                                    FrameKind::ReadRequest => {
                                        inner.spans.fence_req(origin, stalled_ns);
                                    }
                                    FrameKind::ReadResponse => {
                                        let key =
                                            SpanKey::new(inner.node, conn, to_wire(mi.aux));
                                        inner.spans.fence_resp(key, stalled_ns);
                                    }
                                    _ => {}
                                }
                            }
                        }
                        let node = inner.node;
                        inner.flight.fence_release(
                            node,
                            conn,
                            u64::from(to_wire(op)),
                            stalled_ns,
                            now.as_nanos(),
                        );
                    }
                }
                // Apply released fragments to memory.
                for (_, frag) in &release.apply {
                    match frag.kind {
                        FrameKind::Data | FrameKind::ReadResponse => {
                            inner.memory.write(frag.addr, &frag.data);
                        }
                        FrameKind::ReadRequest => {
                            // Served at op completion (single-frame op).
                        }
                        _ => unreachable!("only data-bearing kinds are ordered"),
                    }
                }
                // Handle op completions.
                for &op in &release.completed {
                    let Some(mi) = inner.conns[conn].op_meta.remove(&op) else {
                        continue;
                    };
                    if inner.spans.is_enabled() && mi.kind == FrameKind::Data {
                        let c = &inner.conns[conn];
                        inner.spans.delivered(
                            SpanKey::new(c.peer_node, c.peer_conn_id as usize, to_wire(op)),
                            now.as_nanos(),
                            0,
                        );
                    }
                    match mi.kind {
                        FrameKind::Data if mi.notify => {
                            notif.push(Notification {
                                from_node: peer,
                                addr: mi.start_addr,
                                len: mi.total as usize,
                            });
                        }
                        FrameKind::Data => {}
                        FrameKind::ReadRequest => {
                            read_serves.push((mi.start_addr, mi.aux, mi.req_len, op));
                        }
                        FrameKind::ReadResponse => {
                            let read_id = mi.aux;
                            if let Some(h) = inner.conns[conn].pending_reads.remove(&read_id) {
                                let node = inner.node;
                                inner.spans.resp_released(
                                    SpanKey::new(node, conn, to_wire(read_id)),
                                    now.as_nanos(),
                                );
                                read_completions.push((read_id, h));
                            }
                        }
                        _ => {}
                    }
                }
                inner.stats.notifications += notif.len() as u64;
                inner.conns[conn].stats.notifications += notif.len() as u64;
                // Acknowledgement policy.
                let c = &mut inner.conns[conn];
                c.frames_since_ack += 1;
                if c.frames_since_ack >= ack_every {
                    send_ack_now = true;
                } else if !c.ack_timer_armed {
                    c.ack_timer_armed = true;
                    arm_ack_timer = true;
                }
                if c.seqs.has_gap() && !c.nack_timer_armed {
                    c.nack_timer_armed = true;
                    arm_nack = true;
                }
                // Return the drained release buffers for the next frame.
                release.apply.clear();
                release.completed.clear();
                inner.conns[conn].release_scratch = release;
            }
        }
        if duplicate {
            // Immediate explicit ack: recovers from lost acks (§2.4 corner
            // cases — "link failures and lost acknowledgments").
            self.send_explicit_ack(conn);
            return;
        }
        for (read_addr, resp_buf, len, initiator_op) in read_serves {
            self.serve_read(conn, read_addr, resp_buf, len as usize, initiator_op);
        }
        // Notifications and read completions wake application tasks.
        if !notif.is_empty() || !read_completions.is_empty() {
            let (wake, tracer, spans, flight, node) = {
                let mut inner = self.inner.borrow_mut();
                let wake = inner.cfg.cost.app_wake;
                let n = (notif.len() + read_completions.len()) as u64;
                inner.cpu_app.account(wake * n);
                (
                    wake,
                    inner.tracer.clone(),
                    inner.spans.clone(),
                    inner.flight.clone(),
                    inner.node,
                )
            };
            let at = now + wake;
            let notifications = self.notifications.clone();
            self.sim.schedule_at(at, move |sim| {
                for nf in notif {
                    notifications.push(nf);
                }
                for (op, h) in read_completions {
                    h.complete(sim.now());
                    spans.op_completed(SpanKey::new(node, conn, to_wire(op)), sim.now().as_nanos());
                    flight.note(
                        FlightCode::OpComplete,
                        node,
                        Some(conn),
                        None,
                        u64::from(to_wire(op)),
                        h.latency().map_or(0, |l| l.as_nanos()),
                        sim.now().as_nanos(),
                    );
                    if tracer.is_enabled() {
                        if let Some(lat) = h.latency() {
                            tracer.op_latency(conn as u32, lat.as_nanos());
                        }
                        tracer.emit(
                            sim.now().as_nanos(),
                            Some(conn as u32),
                            None,
                            EventKind::OpComplete { op },
                        );
                    }
                }
            });
        }
        if send_ack_now {
            self.send_explicit_ack(conn);
        }
        if arm_ack_timer {
            let delay = self.inner.borrow().cfg.proto.delayed_ack_timeout;
            let ep = self.clone();
            self.sim.schedule_in(delay, move |_| ep.delayed_ack_fire(conn));
        }
        if arm_nack {
            let delay = self.inner.borrow().cfg.proto.nack_delay;
            let ep = self.clone();
            self.sim.schedule_in(delay, move |_| ep.nack_check_fire(conn));
        }
    }

    /// Target-side service of a remote read: build and send the response op.
    fn serve_read(
        &self,
        conn: usize,
        read_addr: u64,
        resp_buf: u64,
        len: usize,
        initiator_op: u64,
    ) {
        let sends = {
            let mut inner = self.inner.borrow_mut();
            let max_payload = inner.cfg.proto.max_payload;
            let node = inner.node;
            let data = Bytes::from(inner.memory.read_vec(read_addr, len));
            let nfrags = len.div_ceil(max_payload).max(1);
            let cost = inner.cfg.cost.copy_cost(len)
                + (inner.cfg.cost.frame_build + inner.cfg.cost.dma_post) * nfrags as u64;
            inner.cpu_proto.account(cost);
            if inner.spans.is_enabled() {
                let c = &inner.conns[conn];
                inner.spans.serve_started(
                    SpanKey::new(c.peer_node, c.peer_conn_id as usize, to_wire(initiator_op)),
                    self.sim.now().as_nanos(),
                );
            }
            let c = &mut inner.conns[conn];
            let op_id = c.next_op;
            c.next_op += 1;
            let fence_floor = c.last_fwd_op.map_or(0, |o| o + 1);
            for i in 0..nfrags {
                let off = i * max_payload;
                let frag = data.slice(off..len.min(off + max_payload));
                let mut fl = FrameFlags::empty();
                if i == 0 {
                    fl |= FrameFlags::FIRST_FRAGMENT;
                }
                if i == nfrags - 1 {
                    fl |= FrameFlags::LAST_FRAGMENT;
                }
                let seq = c.next_seq;
                c.next_seq += 1;
                let header = FrameHeader {
                    kind: FrameKind::ReadResponse,
                    flags: fl,
                    conn: c.peer_conn_id,
                    seq: to_wire(seq),
                    ack: 0,
                    op_id: to_wire(op_id),
                    op_total_len: len as u32,
                    fence_floor: to_wire(fence_floor),
                    remote_addr: resp_buf + off as u64,
                    aux: initiator_op,
                };
                c.send_queue.push_back(Frame {
                    src: MacAddr::new(node as u16, 0),
                    dst: MacAddr::new(c.peer_node as u16, 0),
                    header,
                    payload: frag,
                });
            }
            inner.pump_send(conn, &self.net, &self.sim, true)
        };
        self.dispatch(sends);
        self.ensure_rto(conn);
    }

    // ------------------------------------------------------------------
    // Acks, nacks, timers
    // ------------------------------------------------------------------

    /// Build and send an explicit positive acknowledgement.
    fn send_explicit_ack(&self, conn: usize) {
        let (nic, f) = {
            let mut inner = self.inner.borrow_mut();
            let per = inner.cfg.cost.frame_build + inner.cfg.cost.dma_post;
            inner.cpu_proto.account(per);
            inner.stats.explicit_acks_sent += 1;
            let EndpointInner {
                node,
                nics,
                conns,
                tracer,
                spans,
                flight,
                ..
            } = &mut *inner;
            let node = *node;
            let c = &mut conns[conn];
            c.stats.explicit_acks_sent += 1;
            c.frames_since_ack = 0;
            let cum = c.seqs.cumulative();
            let header = FrameHeader {
                kind: FrameKind::Ack,
                flags: FrameFlags::empty(),
                conn: c.peer_conn_id,
                seq: to_wire(c.next_seq),
                ack: to_wire(c.seqs.cumulative()),
                op_id: 0,
                op_total_len: 0,
                fence_floor: 0,
                remote_addr: 0,
                aux: 0,
            };
            // Reverse-path routing: reply on the rail the peer's frames are
            // arriving on — it is demonstrably alive in at least one
            // direction, unlike a blind round-robin pick that would land
            // half the control traffic on a dead rail during an outage.
            let rail = match c.last_rx_rail {
                Some(r) if r < nics.len() => r,
                _ => {
                    let mask = c.rails.eligible_mask(self.sim.now());
                    c.sched.pick(
                        nics.len(),
                        mask,
                        |i| self.net.nic_tx_backlog(nics[i]).as_nanos(),
                        |n| self.sim.with_rng(|r| r.gen_range(0..n)),
                    )
                }
            };
            let f = Frame {
                src: MacAddr::new(node as u16, rail as u8),
                dst: MacAddr::new(c.peer_node as u16, rail as u8),
                header,
                payload: Bytes::new(),
            };
            tracer.emit(
                self.sim.now().as_nanos(),
                Some(conn as u32),
                Some(rail as u32),
                EventKind::ExplicitAck { ack: cum },
            );
            spans.ack_sent(node, conn, cum, self.sim.now().as_nanos());
            flight.note(
                FlightCode::AckExplicit,
                node,
                Some(conn),
                Some(rail as u32),
                cum,
                0,
                self.sim.now().as_nanos(),
            );
            (nics[rail], f)
        };
        self.net.nic_send(nic, f);
    }

    fn delayed_ack_fire(&self, conn: usize) {
        let send = {
            let mut inner = self.inner.borrow_mut();
            let c = &mut inner.conns[conn];
            c.ack_timer_armed = false;
            c.frames_since_ack > 0
        };
        if send {
            self.send_explicit_ack(conn);
        }
    }

    fn nack_check_fire(&self, conn: usize) {
        let (send_ranges, rearm) = {
            let mut inner = self.inner.borrow_mut();
            let repeat = inner.cfg.proto.nack_repeat;
            let min_age = inner.cfg.proto.nack_delay;
            let now = self.sim.now();
            let c = &mut inner.conns[conn];
            c.nack_timer_armed = false;
            let Conn {
                seqs,
                gaps,
                missing_scratch,
                ..
            } = c;
            seqs.missing_ranges_into(missing_scratch);
            let cumulative = seqs.cumulative();
            // Retire gap state the cumulative ack has passed; what remains
            // is bounded by the window.
            gaps.purge_below(cumulative);
            let mut due = Vec::new();
            for &(from, to) in missing_scratch.iter() {
                // Only report gaps that have persisted for at least
                // `nack_delay` — multi-link skew closes younger gaps on its
                // own, and NACKing them would trigger the unnecessary
                // retransmissions the paper's delayed-NACK design avoids.
                let g = gaps.entry(from, now);
                if now.since(g.first_seen) < min_age {
                    continue;
                }
                if g.last_nack.is_none_or(|t| now.since(t) >= repeat) {
                    g.last_nack = Some(now);
                    due.push((to_wire(from), to_wire(to)));
                }
            }
            let rearm = !missing_scratch.is_empty();
            if rearm {
                c.nack_timer_armed = true;
            }
            (due, rearm)
        };
        if !send_ranges.is_empty() {
            self.send_nack(conn, send_ranges);
        }
        if rearm {
            let delay = self.inner.borrow().cfg.proto.nack_delay;
            let ep = self.clone();
            self.sim.schedule_in(delay, move |_| ep.nack_check_fire(conn));
        }
    }

    fn send_nack(&self, conn: usize, ranges: Vec<(u32, u32)>) {
        let (nic, f) = {
            let mut inner = self.inner.borrow_mut();
            let per = inner.cfg.cost.frame_build + inner.cfg.cost.dma_post;
            inner.cpu_proto.account(per);
            inner.stats.nacks_sent += 1;
            let EndpointInner {
                node,
                nics,
                conns,
                tracer,
                spans,
                flight,
                ..
            } = &mut *inner;
            let node = *node;
            let c = &mut conns[conn];
            c.stats.nacks_sent += 1;
            let gaps = ranges.len() as u32;
            let payload = NackRanges { ranges }.encode();
            let header = FrameHeader {
                kind: FrameKind::Nack,
                flags: FrameFlags::empty(),
                conn: c.peer_conn_id,
                seq: to_wire(c.next_seq),
                ack: to_wire(c.seqs.cumulative()),
                op_id: 0,
                op_total_len: 0,
                fence_floor: 0,
                remote_addr: 0,
                aux: 0,
            };
            // Reverse-path routing: reply on the rail the peer's frames are
            // arriving on — it is demonstrably alive in at least one
            // direction, unlike a blind round-robin pick that would land
            // half the control traffic on a dead rail during an outage.
            let rail = match c.last_rx_rail {
                Some(r) if r < nics.len() => r,
                _ => {
                    let mask = c.rails.eligible_mask(self.sim.now());
                    c.sched.pick(
                        nics.len(),
                        mask,
                        |i| self.net.nic_tx_backlog(nics[i]).as_nanos(),
                        |n| self.sim.with_rng(|r| r.gen_range(0..n)),
                    )
                }
            };
            let f = Frame {
                src: MacAddr::new(node as u16, rail as u8),
                dst: MacAddr::new(c.peer_node as u16, rail as u8),
                header,
                payload,
            };
            tracer.emit(
                self.sim.now().as_nanos(),
                Some(conn as u32),
                Some(rail as u32),
                EventKind::NackSend { gaps },
            );
            // A NACK also carries the cumulative ack.
            spans.ack_sent(node, conn, c.seqs.cumulative(), self.sim.now().as_nanos());
            flight.note(
                FlightCode::Nack,
                node,
                Some(conn),
                Some(rail as u32),
                c.seqs.cumulative(),
                u64::from(gaps),
                self.sim.now().as_nanos(),
            );
            (nics[rail], f)
        };
        self.net.nic_send(nic, f);
    }

    /// Arm the coarse retransmission timeout if frames are unacknowledged.
    fn ensure_rto(&self, conn: usize) {
        let arm = {
            let mut inner = self.inner.borrow_mut();
            let c = &mut inner.conns[conn];
            if c.rto_armed || c.acked == c.next_seq {
                false
            } else {
                c.rto_armed = true;
                true
            }
        };
        if arm {
            let rto = self.inner.borrow().conns[conn].rtt.current_rto();
            let ep = self.clone();
            self.sim.schedule_in(rto, move |_| ep.rto_fire(conn));
        }
    }

    fn rto_fire(&self, conn: usize) {
        let (resend, rearm) = {
            let mut inner = self.inner.borrow_mut();
            let per = inner.cfg.cost.frame_build + inner.cfg.cost.dma_post;
            let now = self.sim.now();
            let c = &mut inner.conns[conn];
            c.rto_armed = false;
            if c.acked == c.next_seq {
                (None, false)
            } else if now.since(c.last_progress) >= c.rtt.current_rto() && c.sent_up_to > c.acked {
                // §2.4: retransmit the last transmitted frame; the receiver
                // will NACK anything else that is missing.
                let seq = c.sent_up_to - 1;
                c.last_progress = now;
                c.stats.retransmits_rto += 1;
                // A timeout means the whole window went unanswered: back the
                // timer off exponentially and debit the rail that carried
                // the frame we are about to retransmit.
                let backoff = c.rtt.on_timeout();
                let rto_ns = c.rtt.current_rto().as_nanos();
                c.stats.rto_backoff_max = c.stats.rto_backoff_max.max(backoff as u64);
                let rail = c.tx.get(seq).map(|s| s.rail);
                let rail_ev = rail.and_then(|r| c.rails.on_loss(r, seq, now));
                if rail_ev.is_some() {
                    c.stats.rail_down_events += 1;
                }
                inner.stats.retransmits_rto += 1;
                inner.stats.rto_backoff_max = inner.stats.rto_backoff_max.max(backoff as u64);
                inner.tracer.emit(
                    now.as_nanos(),
                    Some(conn as u32),
                    rail.map(|r| r as u32),
                    EventKind::RtoFire { seq },
                );
                inner.tracer.emit(
                    now.as_nanos(),
                    Some(conn as u32),
                    rail.map(|r| r as u32),
                    EventKind::RtoBackoff { rto_ns, backoff },
                );
                let node = inner.node;
                inner.flight.note(
                    FlightCode::RtoFire,
                    node,
                    Some(conn),
                    rail.map(|r| r as u32),
                    seq,
                    0,
                    now.as_nanos(),
                );
                inner.flight.rto_backoff(
                    node,
                    conn,
                    rail.map(|r| r as u32),
                    rto_ns,
                    backoff,
                    now.as_nanos(),
                );
                if let Some(RailEvent::Dead(rail)) = rail_ev {
                    inner.stats.rail_down_events += 1;
                    inner.tracer.emit(
                        now.as_nanos(),
                        Some(conn as u32),
                        Some(rail as u32),
                        EventKind::RailDown { rail: rail as u32 },
                    );
                    inner
                        .flight
                        .rail_death(node, Some(conn), rail as u32, now.as_nanos());
                }
                inner.cpu_proto.account(per);
                (
                    inner.prepare_transmit(conn, seq, true, &self.net, &self.sim),
                    true,
                )
            } else {
                (None, true)
            }
        };
        if let Some(s) = resend {
            self.dispatch(vec![s]);
        }
        if rearm {
            let rto = {
                let mut inner = self.inner.borrow_mut();
                inner.conns[conn].rto_armed = true;
                inner.conns[conn].rtt.current_rto()
            };
            let ep = self.clone();
            self.sim.schedule_in(rto, move |_| ep.rto_fire(conn));
        }
    }
}

impl EndpointInner {
    /// Transmit window-eligible frames; `proto_ctx` charges the protocol CPU
    /// for the DMA posts (the application path pre-paid its own).
    fn pump_send(
        &mut self,
        conn: usize,
        net: &Network,
        sim: &Sim,
        proto_ctx: bool,
    ) -> Vec<(NicId, Frame)> {
        let window = self.cfg.proto.window;
        let mut out = std::mem::take(&mut self.send_scratch);
        out.clear();
        loop {
            let c = &mut self.conns[conn];
            if c.sent_up_to >= c.next_seq || c.in_flight() >= window {
                break;
            }
            let seq = c.sent_up_to;
            let frame = c
                .send_queue
                .pop_front()
                .expect("send_queue covers [sent_up_to, next_seq)");
            c.tx.insert(TxSlot {
                seq,
                rail: 0,
                sent_at: SimTime::ZERO,
                retransmitted: false,
                frame,
            });
            if let Some(send) = self.prepare_transmit(conn, seq, false, net, sim) {
                out.push(send);
            }
            self.conns[conn].sent_up_to += 1;
        }
        if proto_ctx && !out.is_empty() {
            let per = self.cfg.cost.dma_post;
            self.cpu_proto.account(per * out.len() as u64);
        }
        if !out.is_empty() {
            let (mut n, mut bytes) = (0u64, 0u64);
            for (_, f) in &out {
                if f.header.kind != FrameKind::ReadRequest {
                    n += 1;
                    bytes += f.payload.len() as u64;
                }
            }
            self.stats.data_frames_sent += n;
            self.stats.data_bytes_sent += bytes;
            self.conns[conn].stats.data_frames_sent += n;
            self.conns[conn].stats.data_bytes_sent += bytes;
            // Any data frame piggybacks the ack state: the receiver-side
            // obligations are satisfied by it.
            self.conns[conn].frames_since_ack = 0;
        }
        out
    }

    /// Fetch the stored frame for `seq`, refresh its piggybacked ack and
    /// assign a rail. `retransmit` marks the stats flag.
    fn prepare_transmit(
        &mut self,
        conn: usize,
        seq: u64,
        retransmit: bool,
        net: &Network,
        sim: &Sim,
    ) -> Option<(NicId, Frame)> {
        let EndpointInner {
            node,
            nics,
            conns,
            tracer,
            spans,
            flight,
            ..
        } = self;
        let node = *node;
        let c = &mut conns[conn];
        let mut f = c.tx.get(seq)?.frame.clone();
        f.header.ack = to_wire(c.seqs.cumulative());
        if retransmit {
            f.header.flags |= FrameFlags::RETRANSMIT;
        }
        let mask = c.rails.eligible_mask(sim.now());
        let rail = c.sched.pick(
            nics.len(),
            mask,
            |i| net.nic_tx_backlog(nics[i]).as_nanos(),
            |n| sim.with_rng(|r| r.gen_range(0..n)),
        );
        c.rails.note_sent(rail, seq);
        let slot = c.tx.get_mut(seq).expect("slot just read");
        slot.rail = rail;
        slot.sent_at = sim.now();
        slot.retransmitted = slot.retransmitted || retransmit;
        f.src = MacAddr::new(node as u16, rail as u8);
        f.dst = MacAddr::new(c.peer_node as u16, rail as u8);
        tracer.emit(
            sim.now().as_nanos(),
            Some(conn as u32),
            Some(rail as u32),
            EventKind::FrameSend { seq, retransmit },
        );
        if spans.is_enabled() {
            let now_ns = sim.now().as_nanos();
            // The frame joins the NIC's transmit backlog behind whatever is
            // already queued: that backlog is the RailQueue phase.
            let queue_ns = net.nic_tx_backlog(nics[rail]).as_nanos();
            match f.header.kind {
                FrameKind::Data => {
                    let crit = f.header.flags.contains(FrameFlags::LAST_FRAGMENT);
                    spans.frame_tx(
                        SpanKey::new(node, conn, f.header.op_id),
                        Leg::Req,
                        crit,
                        retransmit,
                        rail as u32,
                        queue_ns,
                        now_ns,
                    );
                }
                FrameKind::ReadRequest => {
                    spans.frame_tx(
                        SpanKey::new(node, conn, f.header.op_id),
                        Leg::Req,
                        true,
                        retransmit,
                        rail as u32,
                        queue_ns,
                        now_ns,
                    );
                }
                FrameKind::ReadResponse => {
                    let crit = f.header.flags.contains(FrameFlags::LAST_FRAGMENT);
                    spans.frame_tx(
                        SpanKey::new(c.peer_node, c.peer_conn_id as usize, to_wire(f.header.aux)),
                        Leg::Resp,
                        crit,
                        retransmit,
                        rail as u32,
                        queue_ns,
                        now_ns,
                    );
                }
                _ => {}
            }
            // Every data-bearing frame piggybacks the cumulative ack.
            spans.ack_sent(node, conn, c.seqs.cumulative(), now_ns);
        }
        flight.note(
            FlightCode::FrameSend,
            node,
            Some(conn),
            Some(rail as u32),
            seq,
            u64::from(retransmit),
            sim.now().as_nanos(),
        );
        Some((nics[rail], f))
    }

    /// Stamp the physical-arrival milestone for a span-critical frame: the
    /// last fragment of a write or read response, or a read request. The
    /// span is keyed by the *origin* of the op the frame belongs to, which
    /// every header identifies without any lookup table (§ spans docs).
    fn span_arrival(&self, f: &Frame, now_ns: u64) {
        let conn = f.header.conn as usize;
        if conn >= self.conns.len() {
            return;
        }
        match f.header.kind {
            FrameKind::Data if f.header.flags.contains(FrameFlags::LAST_FRAGMENT) => {
                let c = &self.conns[conn];
                self.spans.frame_arrival(
                    SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id),
                    Leg::Req,
                    now_ns,
                );
            }
            FrameKind::ReadRequest => {
                let c = &self.conns[conn];
                self.spans.frame_arrival(
                    SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id),
                    Leg::Req,
                    now_ns,
                );
            }
            FrameKind::ReadResponse if f.header.flags.contains(FrameFlags::LAST_FRAGMENT) => {
                self.spans.frame_arrival(
                    SpanKey::new(self.node, conn, to_wire(f.header.aux)),
                    Leg::Resp,
                    now_ns,
                );
            }
            _ => {}
        }
    }

    /// Stamp the reorder-admission milestone for a span-critical frame and
    /// register write last-fragments with the cumulative-ack waiter queue
    /// (`seq` is the reconstructed 64-bit sequence of this frame).
    fn span_admit(&self, conn: usize, f: &Frame, seq: u64, now_ns: u64) {
        let c = &self.conns[conn];
        match f.header.kind {
            FrameKind::Data if f.header.flags.contains(FrameFlags::LAST_FRAGMENT) => {
                let key = SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id);
                self.spans.frame_admitted(key, Leg::Req, now_ns);
                self.spans.await_cum(self.node, conn, seq, key);
            }
            FrameKind::ReadRequest => {
                self.spans.frame_admitted(
                    SpanKey::new(c.peer_node, c.peer_conn_id as usize, f.header.op_id),
                    Leg::Req,
                    now_ns,
                );
            }
            FrameKind::ReadResponse if f.header.flags.contains(FrameFlags::LAST_FRAGMENT) => {
                self.spans.frame_admitted(
                    SpanKey::new(self.node, conn, to_wire(f.header.aux)),
                    Leg::Resp,
                    now_ns,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::{ms, us};
    use netsim::{build_cluster, FaultModel};

    /// Build a 2-node test rig with the given config.
    fn rig(mut cfg: SystemConfig) -> (Sim, netsim::Cluster, Vec<Endpoint>, (usize, usize)) {
        cfg.nodes = 2;
        let sim = Sim::new(cfg.seed);
        let cluster = build_cluster(&sim, cfg.cluster_spec());
        let cfg = Rc::new(cfg);
        let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
        let conns = Endpoint::connect(&eps[0], &eps[1]);
        (sim, cluster, eps, conns)
    }

    #[test]
    fn basic_write_delivers_data_and_completes() {
        let (sim, _cluster, eps, (c0, _c1)) = rig(SystemConfig::one_link_1g(2));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let p2 = payload.clone();
        let (a, b) = (eps[0].clone(), eps[1].clone());
        let done = sim.spawn("writer", async move {
            let h = a
                .write_bytes(c0, 0x10_000, p2, OpFlags::RELAXED.with_notify())
                .await;
            h.wait().await;
            h.latency().unwrap()
        });
        let b2 = b.clone();
        let notified = sim.spawn("receiver", async move {
            let n = b2.next_notification().await.expect("notification");
            (n.from_node, n.addr, n.len)
        });
        sim.run().expect_quiescent();
        assert_eq!(notified.try_take(), Some((0usize, 0x10_000u64, 10_000usize)));
        assert_eq!(eps[1].mem_read(0x10_000, payload.len()), payload);
        let lat = done.try_take().unwrap();
        assert!(lat > Dur::ZERO);
        // 7 full frames + ack traffic; no drops, no retransmits.
        let s0 = eps[0].stats();
        assert_eq!(s0.ops_write, 1);
        assert_eq!(s0.data_frames_sent, 7);
        assert_eq!(s0.retransmits(), 0);
        let s1 = eps[1].stats();
        assert_eq!(s1.data_frames_recv, 7);
        assert_eq!(s1.dup_frames_recv, 0);
        assert_eq!(s1.ooo_arrivals, 0, "single link delivers in order");
    }

    #[test]
    fn remote_read_round_trip() {
        let (sim, _cluster, eps, (c0, _)) = rig(SystemConfig::one_link_1g(2));
        let secret: Vec<u8> = (0..5000u32).map(|i| (i * 7 % 256) as u8).collect();
        eps[1].mem_write(0xbeef_0000, &secret);
        let a = eps[0].clone();
        let got = sim.spawn("reader", async move {
            let h = a.read(c0, 0x100, 0xbeef_0000, 5000, OpFlags::RELAXED).await;
            h.wait().await;
            a.mem_read(0x100, 5000)
        });
        sim.run().expect_quiescent();
        assert_eq!(got.try_take(), Some(secret));
        assert_eq!(eps[0].stats().ops_read, 1);
        assert!(eps[1].stats().data_frames_sent >= 4); // response frames
    }

    #[test]
    fn write_then_read_sees_data_with_fences() {
        // A backward-fenced read after a write must observe the write.
        let (sim, _cluster, eps, (c0, _)) = rig(SystemConfig::one_link_1g(2));
        let a = eps[0].clone();
        let got = sim.spawn("rw", async move {
            let _w = a
                .write_bytes(c0, 0x2000, vec![42u8; 3000], OpFlags::RELAXED)
                .await;
            let h = a
                .read(
                    c0,
                    0x9000,
                    0x2000,
                    3000,
                    OpFlags::RELAXED.with_fence_backward(),
                )
                .await;
            h.wait().await;
            a.mem_read(0x9000, 3000)
        });
        sim.run().expect_quiescent();
        assert_eq!(got.try_take(), Some(vec![42u8; 3000]));
    }

    #[test]
    fn two_rails_cause_out_of_order_arrivals_but_correct_data() {
        let (sim, _cluster, eps, (c0, _)) = rig(SystemConfig::two_link_1g_unordered(2));
        let n = 200_000usize;
        let payload: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
        let p2 = payload.clone();
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, p2, OpFlags::RELAXED).await;
            h.wait().await;
        });
        sim.run().expect_quiescent();
        assert_eq!(eps[1].mem_read(0, n), payload);
        let s1 = eps[1].stats();
        // Round-robin striping over two rails: a substantial fraction of
        // frames arrives out of order (the paper reports 45–50% on long
        // saturating runs; this short single-op transfer sees less).
        let frac = s1.ooo_fraction();
        assert!(
            frac > 0.1 && frac < 0.75,
            "ooo fraction {frac} out of expected band"
        );
        // ... but nothing was retransmitted: skew is not loss.
        assert_eq!(eps[0].stats().retransmits(), 0);
        assert_eq!(s1.dup_frames_recv, 0);
    }

    #[test]
    fn loss_is_recovered_by_nack_retransmission() {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: 0.02,
            corrupt_rate: 0.0,
        };
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let n = 300_000usize;
        let payload: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
        let p2 = payload.clone();
        let a = eps[0].clone();
        let done = sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, p2, OpFlags::RELAXED).await;
            h.wait().await;
            true
        });
        sim.run().expect_quiescent();
        assert_eq!(done.try_take(), Some(true));
        assert_eq!(eps[1].mem_read(0, n), payload, "loss must not corrupt data");
        let s0 = eps[0].stats();
        assert!(s0.retransmits() > 0, "2% loss must cause retransmissions");
        let s1 = eps[1].stats();
        assert!(s1.nacks_sent > 0, "gaps must be NACKed");
    }

    #[test]
    fn nack_dedup_state_stays_window_bounded_after_lossy_soak() {
        // Regression for the unbounded-map version of the NACK-dedup state:
        // `last_nack` / `gap_first_seen` entries are only inserted on gaps,
        // and the ACK-advance path must purge everything below the
        // cumulative ack. After a long lossy soak (thousands of frames, many
        // distinct gaps over time) the live state must be bounded by the
        // window — and, once quiescent, empty — rather than scaling with
        // total loss history.
        let mut cfg = SystemConfig::four_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: 0.03,
            corrupt_rate: 0.005,
        };
        let window = cfg.proto.window as usize;
        let (sim, _cluster, eps, (c0, c1)) = rig(cfg);
        let n = 200_000usize;
        let payload: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
        // Several sequential ops so gap state churns across many windows.
        for round in 0..4u64 {
            let a = eps[0].clone();
            let p2 = payload.clone();
            sim.spawn("soak-writer", async move {
                let h = a
                    .write_bytes(c0, round * n as u64, p2, OpFlags::RELAXED)
                    .await;
                h.wait().await;
            });
            sim.run().expect_quiescent();
        }
        let s0 = eps[0].stats();
        assert!(s0.retransmits() > 0, "soak must actually lose frames");
        for (ep, conn) in [(&eps[0], c0), (&eps[1], c1)] {
            let (tx, gaps, ooo) = ep.window_state_sizes(conn);
            assert!(tx <= window, "{tx} in-flight frames exceed window");
            assert!(gaps <= window, "{gaps} live gap entries exceed window");
            assert!(ooo <= window, "{ooo} out-of-order frames exceed window");
            assert_eq!(tx, 0, "quiescent sender must have drained its ring");
            assert_eq!(gaps, 0, "quiescent receiver must have purged gaps");
        }
        assert_eq!(eps[1].mem_read(0, n), payload, "soak must still deliver");
    }

    #[test]
    fn corruption_is_recovered() {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: 0.0,
            // High enough that ~200 frames corrupt a few with overwhelming
            // probability regardless of the RNG stream behind the seed.
            corrupt_rate: 0.03,
        };
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let n = 300_000usize;
        let payload: Vec<u8> = (0..n).map(|i| (i % 233) as u8).collect();
        let p2 = payload.clone();
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, p2, OpFlags::RELAXED).await;
            h.wait().await;
        });
        sim.run().expect_quiescent();
        assert_eq!(eps[1].mem_read(0, n), payload);
        assert!(eps[1].stats().corrupt_frames > 0);
    }

    #[test]
    fn window_limits_in_flight_frames() {
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.proto.window = 4;
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let n = 100_000usize;
        let payload: Vec<u8> = vec![7u8; n];
        let p2 = payload.clone();
        let a = eps[0].clone();
        let done = sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, p2, OpFlags::RELAXED).await;
            h.wait().await;
            true
        });
        sim.run().expect_quiescent();
        assert_eq!(done.try_take(), Some(true));
        assert_eq!(eps[1].mem_read(0, n), payload);
    }

    #[test]
    fn many_small_ordered_writes_apply_in_order() {
        // force_ordered (2L mode): every op is fully fenced; the final
        // memory state must reflect issue order even on two rails.
        let mut cfg = SystemConfig::two_link_1g(2);
        cfg.proto.window = 64;
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            // All writes to the same address: last issued must win.
            let mut handles = Vec::new();
            for i in 0..50u8 {
                let h = a
                    .write_bytes(c0, 0x500, vec![i; 2000], OpFlags::RELAXED)
                    .await;
                handles.push(h);
            }
            for h in handles {
                h.wait().await;
            }
        });
        sim.run().expect_quiescent();
        assert_eq!(eps[1].mem_read(0x500, 2000), vec![49u8; 2000]);
    }

    #[test]
    fn notify_arrives_after_fenced_predecessors() {
        // The DSM idiom: bulk unfenced writes, then an ordered+notify
        // control write; the notification must imply the bulk data landed.
        let (sim, _cluster, eps, (c0, _)) = rig(SystemConfig::two_link_1g_unordered(2));
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            let _bulk = a
                .write_bytes(c0, 0x0, vec![9u8; 120_000], OpFlags::RELAXED)
                .await;
            let _ctl = a
                .write_bytes(c0, 0x8_0000, vec![1u8], OpFlags::ORDERED_NOTIFY)
                .await;
        });
        let b = eps[1].clone();
        let checked = sim.spawn("receiver", async move {
            let n = b.next_notification().await.expect("notification");
            assert_eq!(n.addr, 0x8_0000);
            // Backward fence: all 120 000 bulk bytes must already be here.
            b.mem_read(0, 120_000) == vec![9u8; 120_000]
        });
        sim.run().expect_quiescent();
        assert_eq!(checked.try_take(), Some(true));
    }

    #[test]
    fn rto_recovers_when_every_nack_is_lost() {
        // Pathological: high loss on a tiny transfer; NACKs themselves can
        // be lost; the coarse timer must still complete the op.
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.fault = FaultModel {
            loss_rate: 0.30,
            corrupt_rate: 0.0,
        };
        cfg.proto.rto_initial = ms(2);
        cfg.seed = 99;
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let a = eps[0].clone();
        let done = sim.spawn("writer", async move {
            let h = a
                .write_bytes(c0, 0, vec![0xabu8; 40_000], OpFlags::RELAXED)
                .await;
            h.wait().await;
            true
        });
        let report = sim.run();
        report.expect_quiescent();
        assert_eq!(done.try_take(), Some(true));
        assert_eq!(eps[1].mem_read(0, 40_000), vec![0xabu8; 40_000]);
    }

    #[test]
    fn interrupt_coalescing_under_load() {
        // Back-to-back frames: only the first receive of a burst should
        // interrupt; the rest are polled.
        let (sim, _cluster, eps, (c0, _)) = rig(SystemConfig::one_link_1g(2));
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            let h = a
                .write_bytes(c0, 0, vec![1u8; 400_000], OpFlags::RELAXED)
                .await;
            h.wait().await;
        });
        sim.run().expect_quiescent();
        let s1 = eps[1].stats();
        let frac = s1.rx_interrupt_fraction();
        assert!(
            frac < 0.6,
            "coalescing should absorb most of a burst, got {frac}"
        );
        assert!(s1.rx_interrupts >= 1);
    }

    #[test]
    fn bidirectional_traffic_on_one_connection() {
        let (sim, _cluster, eps, (c0, c1)) = rig(SystemConfig::one_link_1g(2));
        let a = eps[0].clone();
        let b = eps[1].clone();
        let ta = sim.spawn("a", async move {
            let h = a.write_bytes(c0, 0x1000, vec![3u8; 50_000], OpFlags::RELAXED).await;
            h.wait().await;
            true
        });
        let tb = sim.spawn("b", async move {
            let h = b.write_bytes(c1, 0x2000, vec![4u8; 50_000], OpFlags::RELAXED).await;
            h.wait().await;
            true
        });
        sim.run().expect_quiescent();
        assert_eq!(ta.try_take(), Some(true));
        assert_eq!(tb.try_take(), Some(true));
        assert_eq!(eps[1].mem_read(0x1000, 50_000), vec![3u8; 50_000]);
        assert_eq!(eps[0].mem_read(0x2000, 50_000), vec![4u8; 50_000]);
        // Piggybacking should have kept explicit acks well below one per
        // data frame in each direction.
        let s = eps[0].stats();
        assert!(s.explicit_acks_sent < s.data_frames_sent);
    }

    #[test]
    fn min_latency_is_paper_scale() {
        // Small ping on 10G: the paper reports ≈30 µs minimum one-way
        // memory-to-memory latency (ping-pong / 2). Accept a 20–45 µs band.
        let (sim, _cluster, eps, (c0, c1)) = rig(SystemConfig::one_link_10g(2));
        let a = eps[0].clone();
        let b = eps[1].clone();
        let rtt = sim.spawn("ping", async move {
            let t0 = a_now(&a);
            let _ = a
                .write_bytes(c0, 0x0, vec![1u8; 16], OpFlags::RELAXED.with_notify())
                .await;
            // b's echo task replies below.
            let _n = a.next_notification().await.expect("pong");
            a_now(&a).since(t0)
        });
        sim.spawn("echo", async move {
            b.next_notification().await.expect("ping");
            let _ = b
                .write_bytes(c1, 0x0, vec![2u8; 16], OpFlags::RELAXED.with_notify())
                .await;
        });
        sim.run().expect_quiescent();
        let rtt = rtt.try_take().unwrap();
        let one_way_us = rtt.as_micros_f64() / 2.0;
        assert!(
            (15.0..50.0).contains(&one_way_us),
            "one-way latency {one_way_us:.1}us outside the paper's scale"
        );
    }

    fn a_now(ep: &Endpoint) -> SimTime {
        ep.sim.now()
    }

    #[test]
    fn delayed_ack_fires_for_stray_frames() {
        // A single tiny write (1 frame < ack_every): the explicit ack must
        // come from the delayed-ack timer, completing the op.
        let mut cfg = SystemConfig::one_link_1g(2);
        cfg.proto.ack_every = 16;
        cfg.proto.delayed_ack_timeout = us(80);
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let a = eps[0].clone();
        let done = sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, vec![1u8; 100], OpFlags::RELAXED).await;
            h.wait().await;
            true
        });
        let report = sim.run();
        report.expect_quiescent();
        assert_eq!(done.try_take(), Some(true));
        assert_eq!(eps[1].stats().explicit_acks_sent, 1);
        // The ack waited for the delayed-ack timeout.
        assert!(report.end_time.as_nanos() >= 80_000);
    }

    #[test]
    fn spans_attribute_write_and_read_latency_exactly() {
        // Spans and the tracer record the same workload; every completed
        // span's phase breakdown must telescope exactly to its end-to-end
        // latency, and the span latencies must reconcile with the tracer's
        // op-latency histograms (same ops, same nanoseconds).
        let mut cfg = SystemConfig::two_link_1g_unordered(7).with_spans(1024);
        cfg.trace_ring = 4096;
        let (sim, _cluster, eps, (c0, _c1)) = rig(cfg);
        let a = eps[0].clone();
        let done = sim.spawn("rw", async move {
            let hw = a
                .write_bytes(c0, 0x1000, vec![5u8; 30_000], OpFlags::RELAXED.with_notify())
                .await;
            hw.wait().await;
            let hr = a.read(c0, 0x100, 0x1000, 9_000, OpFlags::RELAXED).await;
            hr.wait().await;
            true
        });
        sim.run().expect_quiescent();
        assert_eq!(done.try_take(), Some(true));

        let snap = eps[0]
            .span_recorder()
            .snapshot()
            .expect("spans were enabled");
        assert_eq!(snap.completed_total, 2, "one write span + one read span");
        assert_eq!(snap.active, 0, "no spans left in flight");
        let mut span_latency_sum = 0u64;
        for s in &snap.spans {
            let b = me_trace::PhaseBreakdown::from_span(s);
            assert_eq!(
                b.phases.iter().sum::<u64>(),
                b.latency_ns,
                "phases must sum exactly to latency for {:?}",
                s.kind
            );
            assert_eq!(b.latency_ns, s.complete - s.created);
            assert!(s.frames >= 1 && s.rails_used != 0);
            span_latency_sum += b.latency_ns;
        }
        // Reconcile against the tracer: both observed the same two ops.
        let t = eps[0].tracer().snapshot().expect("tracer was enabled");
        let hist_sum: u64 = t.op_latency.values().map(|h| h.sum()).sum();
        assert_eq!(span_latency_sum, hist_sum);
    }

    #[test]
    fn flight_recorder_rides_along_and_dumps_on_demand() {
        let cfg = SystemConfig::one_link_1g(3).with_flight(me_trace::FlightConfig {
            dump_dir: None,
            ..me_trace::FlightConfig::default()
        });
        let (sim, _cluster, eps, (c0, _)) = rig(cfg);
        let a = eps[0].clone();
        sim.spawn("writer", async move {
            let h = a.write_bytes(c0, 0, vec![7u8; 20_000], OpFlags::RELAXED).await;
            h.wait().await;
        });
        sim.run().expect_quiescent();
        let fr = eps[0].flight_recorder();
        assert!(fr.is_enabled());
        let dump = fr.force_dump(sim.now().as_nanos()).expect("dump");
        let text = dump.render();
        let parsed = me_trace::Json::parse(&text).expect("dump round-trips");
        let events = parsed.get("events").expect("events array");
        assert!(
            !events.items().expect("array").is_empty(),
            "issue/send/recv/complete events must be in the ring"
        );
    }
}
