//! Protocol statistics.
//!
//! The paper's evaluation is largely about network-level behaviour: the
//! fraction of frames arriving out of order, the extra traffic added by
//! explicit acknowledgements and retransmissions, the fraction of frames
//! that cause interrupts, and the CPU time spent in the protocol. Every
//! counter needed for Figures 2–6 lives here.

use netsim::Dur;

/// Per-node (and aggregable) protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// Remote-write operations issued.
    pub ops_write: u64,
    /// Remote-read operations issued.
    pub ops_read: u64,
    /// Payload bytes carried by issued writes.
    pub bytes_written: u64,
    /// Payload bytes requested by issued reads.
    pub bytes_read: u64,

    /// Data-bearing frames sent first time (writes, read responses).
    pub data_frames_sent: u64,
    /// Payload bytes in those frames.
    pub data_bytes_sent: u64,
    /// Read-request frames sent.
    pub read_req_frames_sent: u64,
    /// Explicit (non-piggybacked) positive acknowledgements sent.
    pub explicit_acks_sent: u64,
    /// Negative acknowledgements sent.
    pub nacks_sent: u64,
    /// Frames retransmitted due to a NACK.
    pub retransmits_nack: u64,
    /// Frames retransmitted by the coarse timeout.
    pub retransmits_rto: u64,
    /// Deepest consecutive exponential-backoff level the adaptive
    /// retransmission timer reached (0 = never backed off): a stalled
    /// connection shows up here instead of silently retrying forever.
    pub rto_backoff_max: u64,
    /// Rails this node's connections declared dead (excluded from
    /// striping). Matches the `rail_down` trace events.
    pub rail_down_events: u64,
    /// Dead rails re-admitted after a successful probe. Matches the
    /// `rail_up` trace events.
    pub rail_up_events: u64,

    /// Data-bearing frames received (first copies only).
    pub data_frames_recv: u64,
    /// Payload bytes in those frames (first copies only) — the numerator
    /// for goodput measurements.
    pub data_bytes_recv: u64,
    /// Control frames received (ACK/NACK).
    pub ctrl_frames_recv: u64,
    /// Duplicate frames received (unnecessary retransmissions).
    pub dup_frames_recv: u64,
    /// Frames whose sequence was not the next expected at arrival — the
    /// paper's out-of-order metric.
    pub ooo_arrivals: u64,
    /// Frames discarded because they arrived damaged (checksum).
    pub corrupt_frames: u64,

    /// Receive events that raised an interrupt (protocol thread was idle).
    pub rx_interrupts: u64,
    /// Receive events absorbed by polling (protocol thread already active).
    pub rx_coalesced: u64,
    /// Transmit completions that raised an interrupt.
    pub tx_interrupts: u64,
    /// Transmit completions absorbed by polling.
    pub tx_coalesced: u64,

    /// Completion notifications delivered to the application.
    pub notifications: u64,
    /// Peak number of fragments buffered for fence reasons.
    pub reorder_peak: u64,
}

impl ProtoStats {
    /// Sum two stat blocks (for cluster-wide aggregation).
    pub fn merge(&mut self, o: &ProtoStats) {
        self.ops_write += o.ops_write;
        self.ops_read += o.ops_read;
        self.bytes_written += o.bytes_written;
        self.bytes_read += o.bytes_read;
        self.data_frames_sent += o.data_frames_sent;
        self.data_bytes_sent += o.data_bytes_sent;
        self.read_req_frames_sent += o.read_req_frames_sent;
        self.explicit_acks_sent += o.explicit_acks_sent;
        self.nacks_sent += o.nacks_sent;
        self.retransmits_nack += o.retransmits_nack;
        self.retransmits_rto += o.retransmits_rto;
        self.rto_backoff_max = self.rto_backoff_max.max(o.rto_backoff_max);
        self.rail_down_events += o.rail_down_events;
        self.rail_up_events += o.rail_up_events;
        self.data_frames_recv += o.data_frames_recv;
        self.data_bytes_recv += o.data_bytes_recv;
        self.ctrl_frames_recv += o.ctrl_frames_recv;
        self.dup_frames_recv += o.dup_frames_recv;
        self.ooo_arrivals += o.ooo_arrivals;
        self.corrupt_frames += o.corrupt_frames;
        self.rx_interrupts += o.rx_interrupts;
        self.rx_coalesced += o.rx_coalesced;
        self.tx_interrupts += o.tx_interrupts;
        self.tx_coalesced += o.tx_coalesced;
        self.notifications += o.notifications;
        self.reorder_peak = self.reorder_peak.max(o.reorder_peak);
    }

    /// Every monotonically non-decreasing counter, paired with a stable
    /// name, in declaration order. This is the registration list for
    /// time-resolved telemetry: interval deltas of exactly these fields
    /// telescope back to the end-of-run aggregate (the max-merged
    /// `rto_backoff_max` / `reorder_peak` gauges are excluded — their
    /// deltas would not sum to anything meaningful).
    pub fn monotone_counters(&self) -> [(&'static str, u64); 24] {
        [
            ("ops_write", self.ops_write),
            ("ops_read", self.ops_read),
            ("bytes_written", self.bytes_written),
            ("bytes_read", self.bytes_read),
            ("data_frames_sent", self.data_frames_sent),
            ("data_bytes_sent", self.data_bytes_sent),
            ("read_req_frames_sent", self.read_req_frames_sent),
            ("explicit_acks_sent", self.explicit_acks_sent),
            ("nacks_sent", self.nacks_sent),
            ("retransmits_nack", self.retransmits_nack),
            ("retransmits_rto", self.retransmits_rto),
            ("rail_down_events", self.rail_down_events),
            ("rail_up_events", self.rail_up_events),
            ("data_frames_recv", self.data_frames_recv),
            ("data_bytes_recv", self.data_bytes_recv),
            ("ctrl_frames_recv", self.ctrl_frames_recv),
            ("dup_frames_recv", self.dup_frames_recv),
            ("ooo_arrivals", self.ooo_arrivals),
            ("corrupt_frames", self.corrupt_frames),
            ("rx_interrupts", self.rx_interrupts),
            ("rx_coalesced", self.rx_coalesced),
            ("tx_interrupts", self.tx_interrupts),
            ("tx_coalesced", self.tx_coalesced),
            ("notifications", self.notifications),
        ]
    }

    /// Total retransmitted frames.
    pub fn retransmits(&self) -> u64 {
        self.retransmits_nack + self.retransmits_rto
    }

    /// "Extra frames" as the paper defines them: explicit ACKs, NACKs and
    /// retransmissions, as a fraction of data frames sent.
    pub fn extra_frame_fraction(&self) -> f64 {
        if self.data_frames_sent == 0 {
            return 0.0;
        }
        (self.explicit_acks_sent + self.nacks_sent + self.retransmits()) as f64
            / self.data_frames_sent as f64
    }

    /// Fraction of received data frames that arrived out of order.
    pub fn ooo_fraction(&self) -> f64 {
        if self.data_frames_recv == 0 {
            return 0.0;
        }
        self.ooo_arrivals as f64 / self.data_frames_recv as f64
    }

    /// Fraction of receive-path events that raised an interrupt (the
    /// complement of the coalescing win).
    pub fn rx_interrupt_fraction(&self) -> f64 {
        let total = self.rx_interrupts + self.rx_coalesced;
        if total == 0 {
            return 0.0;
        }
        self.rx_interrupts as f64 / total as f64
    }

    /// Fraction of transmit completions that raised an interrupt.
    pub fn tx_interrupt_fraction(&self) -> f64 {
        let total = self.tx_interrupts + self.tx_coalesced;
        if total == 0 {
            return 0.0;
        }
        self.tx_interrupts as f64 / total as f64
    }
}

/// CPU accounting snapshot for one node.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuSnapshot {
    /// Busy time of the application CPU (syscalls, copies, op initiation).
    pub app_busy: Dur,
    /// Busy time of the protocol CPU (interrupts, receive path, timers).
    pub proto_busy: Dur,
}

impl CpuSnapshot {
    /// Combined utilization out of 2.0 (the paper plots out of 200%).
    pub fn utilization_of_two(&self, elapsed: Dur) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        (self.app_busy.as_nanos() + self.proto_busy.as_nanos()) as f64
            / elapsed.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let s = ProtoStats {
            data_frames_sent: 100,
            explicit_acks_sent: 3,
            nacks_sent: 1,
            retransmits_nack: 1,
            retransmits_rto: 0,
            data_frames_recv: 50,
            ooo_arrivals: 25,
            rx_interrupts: 10,
            rx_coalesced: 40,
            ..Default::default()
        };
        assert!((s.extra_frame_fraction() - 0.05).abs() < 1e-12);
        assert!((s.ooo_fraction() - 0.5).abs() < 1e-12);
        assert!((s.rx_interrupt_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.retransmits(), 1);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = ProtoStats::default();
        assert_eq!(s.extra_frame_fraction(), 0.0);
        assert_eq!(s.ooo_fraction(), 0.0);
        assert_eq!(s.rx_interrupt_fraction(), 0.0);
        assert_eq!(s.tx_interrupt_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ProtoStats {
            data_frames_sent: 10,
            reorder_peak: 5,
            ..Default::default()
        };
        let b = ProtoStats {
            data_frames_sent: 7,
            reorder_peak: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.data_frames_sent, 17);
        assert_eq!(a.reorder_peak, 9);
    }

    #[test]
    fn cpu_utilization_of_two() {
        let c = CpuSnapshot {
            app_busy: netsim::time::us(50),
            proto_busy: netsim::time::us(100),
        };
        assert!((c.utilization_of_two(netsim::time::us(100)) - 1.5).abs() < 1e-12);
    }
}
