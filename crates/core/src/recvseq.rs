//! Receive-side sequence tracking: cumulative acknowledgement state,
//! duplicate detection, and gap (missing-range) computation for NACKs.
//!
//! This module is pure state-machine logic (no timing), so it is tested
//! exhaustively here and driven by property tests in `tests/`.

use std::collections::BTreeSet;

/// What [`SeqTracker::admit`] decided about an arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// First time this sequence number is seen. `in_order` is true when the
    /// frame carried exactly the next expected sequence (the paper's
    /// out-of-order statistic counts the complement).
    New {
        /// Arrived exactly in sequence order.
        in_order: bool,
    },
    /// Already received (a retransmission the receiver did not need).
    Duplicate,
}

/// Tracks which sequence numbers of one connection direction have arrived.
#[derive(Debug, Default)]
pub struct SeqTracker {
    /// All sequences `< cumulative` have been received.
    cumulative: u64,
    /// Received sequences `>= cumulative` (out-of-order arrivals).
    ooo: BTreeSet<u64>,
    /// One past the highest sequence ever received.
    frontier: u64,
}

impl SeqTracker {
    /// Fresh tracker expecting sequence 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the arrival of `seq`.
    pub fn admit(&mut self, seq: u64) -> Admit {
        if seq < self.cumulative || self.ooo.contains(&seq) {
            return Admit::Duplicate;
        }
        let in_order = seq == self.cumulative;
        self.frontier = self.frontier.max(seq + 1);
        if in_order {
            self.cumulative += 1;
            // Drain any contiguous run that was waiting.
            while self.ooo.remove(&self.cumulative) {
                self.cumulative += 1;
            }
        } else {
            self.ooo.insert(seq);
        }
        Admit::New { in_order }
    }

    /// Cumulative acknowledgement: all sequences below this were received.
    pub fn cumulative(&self) -> u64 {
        self.cumulative
    }

    /// One past the highest sequence received so far.
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// True if some sequence below [`Self::frontier`] is still missing.
    pub fn has_gap(&self) -> bool {
        self.cumulative < self.frontier
    }

    /// Number of frames currently held out of order.
    pub fn ooo_held(&self) -> usize {
        self.ooo.len()
    }

    /// The missing half-open ranges in `[cumulative, frontier)` — exactly
    /// what a NACK should report.
    pub fn missing_ranges(&self) -> Vec<(u64, u64)> {
        let mut ranges = Vec::new();
        let mut cursor = self.cumulative;
        for &have in self.ooo.iter() {
            debug_assert!(have >= cursor);
            if have > cursor {
                ranges.push((cursor, have));
            }
            cursor = have + 1;
        }
        if cursor < self.frontier {
            ranges.push((cursor, self.frontier));
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream() {
        let mut t = SeqTracker::new();
        for s in 0..100 {
            assert_eq!(t.admit(s), Admit::New { in_order: true });
        }
        assert_eq!(t.cumulative(), 100);
        assert!(!t.has_gap());
        assert!(t.missing_ranges().is_empty());
    }

    #[test]
    fn gap_then_fill() {
        let mut t = SeqTracker::new();
        assert_eq!(t.admit(0), Admit::New { in_order: true });
        assert_eq!(t.admit(3), Admit::New { in_order: false });
        assert_eq!(t.admit(4), Admit::New { in_order: false });
        assert!(t.has_gap());
        assert_eq!(t.missing_ranges(), vec![(1, 3)]);
        assert_eq!(t.cumulative(), 1);
        assert_eq!(t.admit(1), Admit::New { in_order: true });
        assert_eq!(t.cumulative(), 2);
        assert_eq!(t.missing_ranges(), vec![(2, 3)]);
        assert_eq!(t.admit(2), Admit::New { in_order: true });
        // Draining 3 and 4 which were held out of order.
        assert_eq!(t.cumulative(), 5);
        assert!(!t.has_gap());
        assert_eq!(t.ooo_held(), 0);
    }

    #[test]
    fn multiple_gaps_reported() {
        let mut t = SeqTracker::new();
        for s in [0u64, 2, 5, 6, 9] {
            t.admit(s);
        }
        assert_eq!(t.missing_ranges(), vec![(1, 2), (3, 5), (7, 9)]);
        assert_eq!(t.ooo_held(), 4);
    }

    #[test]
    fn duplicates_detected_below_and_above_cumulative() {
        let mut t = SeqTracker::new();
        t.admit(0);
        t.admit(1);
        t.admit(5);
        assert_eq!(t.admit(0), Admit::Duplicate);
        assert_eq!(t.admit(1), Admit::Duplicate);
        assert_eq!(t.admit(5), Admit::Duplicate);
        assert_eq!(t.admit(2), Admit::New { in_order: true });
    }

    #[test]
    fn reverse_order_delivery() {
        let mut t = SeqTracker::new();
        for s in (0..10u64).rev() {
            let got = t.admit(s);
            let expected_in_order = s == 0;
            assert_eq!(
                got,
                Admit::New {
                    in_order: expected_in_order
                }
            );
        }
        assert_eq!(t.cumulative(), 10);
        assert!(!t.has_gap());
    }
}
