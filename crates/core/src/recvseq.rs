//! Receive-side sequence tracking: cumulative acknowledgement state,
//! duplicate detection, and gap (missing-range) computation for NACKs.
//!
//! This module is pure state-machine logic (no timing), so it is tested
//! exhaustively here and driven by property tests in `tests/`.
//!
//! The tracker exploits the window invariant: the live span
//! `[cumulative, frontier)` never exceeds the sender's window, so
//! out-of-order arrivals are a *bitmap ring* indexed by `seq mod capacity`
//! instead of an ordered set — admit is O(1) with zero steady-state
//! allocation. The ring grows by doubling if a caller (tests, reference
//! models) pushes a wider span than it was sized for.

/// What [`SeqTracker::admit`] decided about an arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// First time this sequence number is seen. `in_order` is true when the
    /// frame carried exactly the next expected sequence (the paper's
    /// out-of-order statistic counts the complement).
    New {
        /// Arrived exactly in sequence order.
        in_order: bool,
    },
    /// Already received (a retransmission the receiver did not need).
    Duplicate,
}

/// Tracks which sequence numbers of one connection direction have arrived.
#[derive(Debug)]
pub struct SeqTracker {
    /// All sequences `< cumulative` have been received.
    cumulative: u64,
    /// One past the highest sequence ever received.
    frontier: u64,
    /// Frames currently held out of order (set bits in the ring).
    ooo_held: usize,
    /// Bitmap ring over `[cumulative, frontier)`: bit `seq mod capacity` is
    /// set iff `seq` arrived out of order and is still awaited by the
    /// cumulative drain. Capacity (`bits.len() * 64`) is a power of two.
    bits: Vec<u64>,
}

/// Smallest ring capacity in sequence numbers (two 64-bit words).
const MIN_CAP: usize = 128;

impl Default for SeqTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqTracker {
    /// Fresh tracker expecting sequence 0 first.
    pub fn new() -> Self {
        Self::with_window(MIN_CAP)
    }

    /// Fresh tracker pre-sized so a live span of `window` sequences never
    /// reallocates.
    pub fn with_window(window: usize) -> Self {
        let cap = window.max(MIN_CAP).next_power_of_two();
        Self {
            cumulative: 0,
            frontier: 0,
            ooo_held: 0,
            bits: vec![0u64; cap / 64],
        }
    }

    fn cap(&self) -> u64 {
        (self.bits.len() * 64) as u64
    }

    fn bit(&self, seq: u64) -> bool {
        let i = seq & (self.cap() - 1);
        self.bits[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
    }

    fn set_bit(&mut self, seq: u64) {
        let i = seq & (self.cap() - 1);
        self.bits[(i >> 6) as usize] |= 1u64 << (i & 63);
    }

    fn clear_bit(&mut self, seq: u64) {
        let i = seq & (self.cap() - 1);
        self.bits[(i >> 6) as usize] &= !(1u64 << (i & 63));
    }

    /// Double the ring until `span` fits, re-hashing the live bits.
    fn grow(&mut self, span: u64) {
        let mut cap = self.cap();
        while cap < span {
            cap *= 2;
        }
        let old = std::mem::replace(&mut self.bits, vec![0u64; (cap / 64) as usize]);
        let old_cap = (old.len() * 64) as u64;
        for seq in self.cumulative..self.frontier {
            let i = seq & (old_cap - 1);
            if old[(i >> 6) as usize] & (1u64 << (i & 63)) != 0 {
                self.set_bit(seq);
            }
        }
    }

    /// Record the arrival of `seq`.
    pub fn admit(&mut self, seq: u64) -> Admit {
        if seq < self.cumulative || (seq < self.frontier && self.bit(seq)) {
            return Admit::Duplicate;
        }
        let span = (seq + 1).max(self.frontier) - self.cumulative;
        if span > self.cap() {
            self.grow(span);
        }
        let in_order = seq == self.cumulative;
        self.frontier = self.frontier.max(seq + 1);
        if in_order {
            self.cumulative += 1;
            // Drain any contiguous run that was waiting.
            while self.cumulative < self.frontier && self.bit(self.cumulative) {
                self.clear_bit(self.cumulative);
                self.ooo_held -= 1;
                self.cumulative += 1;
            }
        } else {
            self.set_bit(seq);
            self.ooo_held += 1;
        }
        Admit::New { in_order }
    }

    /// Cumulative acknowledgement: all sequences below this were received.
    pub fn cumulative(&self) -> u64 {
        self.cumulative
    }

    /// One past the highest sequence received so far.
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// True if some sequence below [`Self::frontier`] is still missing.
    pub fn has_gap(&self) -> bool {
        self.cumulative < self.frontier
    }

    /// Number of frames currently held out of order.
    pub fn ooo_held(&self) -> usize {
        self.ooo_held
    }

    /// The missing half-open ranges in `[cumulative, frontier)` — exactly
    /// what a NACK should report — written into a caller-owned scratch
    /// vector (cleared first) so the hot path reuses its capacity.
    pub fn missing_ranges_into(&self, out: &mut Vec<(u64, u64)>) {
        out.clear();
        let mut run_start = None;
        for seq in self.cumulative..self.frontier {
            if self.bit(seq) {
                if let Some(start) = run_start.take() {
                    out.push((start, seq));
                }
            } else if run_start.is_none() {
                run_start = Some(seq);
            }
        }
        if let Some(start) = run_start {
            out.push((start, self.frontier));
        }
    }

    /// Allocating convenience wrapper around [`Self::missing_ranges_into`].
    pub fn missing_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.missing_ranges_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream() {
        let mut t = SeqTracker::new();
        for s in 0..100 {
            assert_eq!(t.admit(s), Admit::New { in_order: true });
        }
        assert_eq!(t.cumulative(), 100);
        assert!(!t.has_gap());
        assert!(t.missing_ranges().is_empty());
    }

    #[test]
    fn gap_then_fill() {
        let mut t = SeqTracker::new();
        assert_eq!(t.admit(0), Admit::New { in_order: true });
        assert_eq!(t.admit(3), Admit::New { in_order: false });
        assert_eq!(t.admit(4), Admit::New { in_order: false });
        assert!(t.has_gap());
        assert_eq!(t.missing_ranges(), vec![(1, 3)]);
        assert_eq!(t.cumulative(), 1);
        assert_eq!(t.admit(1), Admit::New { in_order: true });
        assert_eq!(t.cumulative(), 2);
        assert_eq!(t.missing_ranges(), vec![(2, 3)]);
        assert_eq!(t.admit(2), Admit::New { in_order: true });
        // Draining 3 and 4 which were held out of order.
        assert_eq!(t.cumulative(), 5);
        assert!(!t.has_gap());
        assert_eq!(t.ooo_held(), 0);
    }

    #[test]
    fn multiple_gaps_reported() {
        let mut t = SeqTracker::new();
        for s in [0u64, 2, 5, 6, 9] {
            t.admit(s);
        }
        assert_eq!(t.missing_ranges(), vec![(1, 2), (3, 5), (7, 9)]);
        assert_eq!(t.ooo_held(), 4);
    }

    #[test]
    fn duplicates_detected_below_and_above_cumulative() {
        let mut t = SeqTracker::new();
        t.admit(0);
        t.admit(1);
        t.admit(5);
        assert_eq!(t.admit(0), Admit::Duplicate);
        assert_eq!(t.admit(1), Admit::Duplicate);
        assert_eq!(t.admit(5), Admit::Duplicate);
        assert_eq!(t.admit(2), Admit::New { in_order: true });
    }

    #[test]
    fn reverse_order_delivery() {
        let mut t = SeqTracker::new();
        for s in (0..10u64).rev() {
            let got = t.admit(s);
            let expected_in_order = s == 0;
            assert_eq!(
                got,
                Admit::New {
                    in_order: expected_in_order
                }
            );
        }
        assert_eq!(t.cumulative(), 10);
        assert!(!t.has_gap());
    }

    #[test]
    fn span_wider_than_initial_capacity_grows() {
        let mut t = SeqTracker::new();
        t.admit(0);
        // Far beyond the 128-seq initial ring: forces a rebuild that must
        // preserve the held-out-of-order bits.
        t.admit(1000);
        t.admit(500);
        assert_eq!(t.admit(1000), Admit::Duplicate);
        assert_eq!(t.admit(500), Admit::Duplicate);
        assert_eq!(t.cumulative(), 1);
        assert_eq!(t.frontier(), 1001);
        assert_eq!(t.ooo_held(), 2);
        assert_eq!(t.missing_ranges(), vec![(1, 500), (501, 1000)]);
    }

    #[test]
    fn missing_ranges_into_reuses_scratch() {
        let mut t = SeqTracker::new();
        for s in [0u64, 2, 5] {
            t.admit(s);
        }
        let mut scratch = Vec::with_capacity(8);
        let cap = scratch.capacity();
        t.missing_ranges_into(&mut scratch);
        assert_eq!(scratch, vec![(1, 2), (3, 5)]);
        assert_eq!(scratch.capacity(), cap);
    }
}
