//! Sequence-number spaces.
//!
//! On the wire, MultiEdge carries 32-bit frame sequence numbers and operation
//! ids that wrap. Internally the protocol uses unbounded `u64` counters and
//! reconstructs the full value from the 32-bit wire field relative to a local
//! reference — unambiguous as long as the sender never has more than 2^31
//! frames in flight, which the fixed-size window guarantees by a huge margin.

/// Truncate an internal 64-bit sequence to its 32-bit wire form.
pub fn to_wire(seq: u64) -> u32 {
    seq as u32
}

/// Reconstruct the full 64-bit sequence closest to `reference` that has the
/// given 32-bit wire form.
///
/// Picks the candidate within ±2^31 of `reference`, so values slightly
/// *behind* the reference (duplicates, stale acks) reconstruct correctly too.
pub fn from_wire(reference: u64, wire: u32) -> u64 {
    let ref_wire = reference as u32;
    let delta = wire.wrapping_sub(ref_wire);
    if delta < (1 << 31) {
        // wire is ahead of (or equal to) the reference.
        reference + delta as u64
    } else {
        // wire is behind the reference.
        let back = (u32::MAX - delta) as u64 + 1;
        reference.saturating_sub(back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_near_reference() {
        for r in [0u64, 5, 1000, u32::MAX as u64, (u32::MAX as u64) * 3 + 17] {
            for d in 0..10u64 {
                let s = r + d;
                assert_eq!(from_wire(r, to_wire(s)), s, "ahead r={r} d={d}");
            }
            for d in 0..10u64 {
                let s = r.saturating_sub(d);
                assert_eq!(from_wire(r, to_wire(s)), s, "behind r={r} d={d}");
            }
        }
    }

    #[test]
    fn across_wire_wrap() {
        // Internal sequence crossing the 32-bit boundary.
        let r = (1u64 << 32) - 3;
        for s in (r - 5)..(r + 5) {
            assert_eq!(from_wire(r, to_wire(s)), s);
        }
    }

    #[test]
    fn window_sized_offsets() {
        let r = 7_000_000_000u64;
        // A full window ahead and behind still reconstructs.
        for off in [1u64, 256, 65_536, 1 << 20] {
            assert_eq!(from_wire(r, to_wire(r + off)), r + off);
            assert_eq!(from_wire(r, to_wire(r - off)), r - off);
        }
    }

    #[test]
    fn saturates_below_zero() {
        // A wire value "behind" reference 0 cannot go negative.
        assert_eq!(from_wire(0, u32::MAX), 0);
    }
}
