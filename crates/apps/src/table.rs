//! Table 1 — the benchmark applications, their paper-sized problems,
//! calibrated sequential times, and footprints.

use crate::barnes::Barnes;
use crate::fft::Fft;
use crate::lu::Lu;
use crate::radix::Radix;
use crate::raytrace::Raytrace;
use crate::water::{Water, WaterKind};
use crate::workload::Workload;

/// The paper-sized instance of every Table 1 application.
pub fn paper_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Barnes::paper()),
        Box::new(Fft::paper()),
        Box::new(Lu::paper()),
        Box::new(Radix::paper()),
        Box::new(Raytrace::paper()),
        Box::new(Water::paper(WaterKind::NSquared)),
        Box::new(Water::paper(WaterKind::Spatial)),
        Box::new(Water::paper(WaterKind::SpatialFineLocks)),
    ]
}

/// Scaled-down instances that run comfortably inside the simulator while
/// preserving each application's communication pattern. Used by the
/// application figure harnesses (3–6); `EXPERIMENTS.md` documents the
/// scaling.
pub fn scaled_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Barnes {
            bodies: 2048,
            steps: 2,
        }),
        Box::new(Fft { m: 18 }),
        Box::new(Lu { n: 32 * crate::lu::B }),
        Box::new(Radix { keys: 1 << 20 }),
        Box::new(Raytrace {
            width: 128,
            height: 128,
            spheres: 24,
        }),
        Box::new(Water {
            molecules: 4096,
            steps: 2,
            kind: WaterKind::NSquared,
        }),
        Box::new(Water {
            molecules: 12288,
            steps: 2,
            kind: WaterKind::Spatial,
        }),
        Box::new(Water {
            molecules: 12288,
            steps: 2,
            kind: WaterKind::SpatialFineLocks,
        }),
    ]
}

/// Tiny instances for smoke tests.
pub fn tiny_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Barnes {
            bodies: 192,
            steps: 1,
        }),
        Box::new(Fft { m: 8 }),
        Box::new(Lu { n: 2 * crate::lu::B }),
        Box::new(Radix { keys: 2048 }),
        Box::new(Raytrace {
            width: 32,
            height: 32,
            spheres: 8,
        }),
        Box::new(Water {
            molecules: 96,
            steps: 1,
            kind: WaterKind::NSquared,
        }),
        Box::new(Water {
            molecules: 256,
            steps: 1,
            kind: WaterKind::Spatial,
        }),
        Box::new(Water {
            molecules: 256,
            steps: 1,
            kind: WaterKind::SpatialFineLocks,
        }),
    ]
}

/// The paper's Table 1 sequential execution times in milliseconds, in the
/// same order as [`paper_workloads`].
pub const TABLE1_SEQ_MS: [f64; 8] = [
    2_877_713.0,
    4_752.0,
    412_096.0,
    4_179.0,
    376_096.0,
    11_678_974.0,
    231_889.0,
    229_586.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_instance_models_its_table1_time() {
        for (w, want) in paper_workloads().iter().zip(TABLE1_SEQ_MS) {
            let got = w.modeled_seq_ns() / 1e6;
            assert!(
                (got - want).abs() < want * 1e-3 + 1.0,
                "{}: modeled {got} ms, Table 1 says {want} ms",
                w.name()
            );
        }
    }

    #[test]
    fn footprints_are_paper_scale() {
        // Table 1 footprints range 80–500 MB; ours should be the same
        // order of magnitude (exact layouts differ).
        for w in paper_workloads() {
            let mb = w.footprint_bytes() as f64 / 1e6;
            assert!(
                (4.0..2000.0).contains(&mb),
                "{}: footprint {mb} MB out of scale",
                w.name()
            );
        }
    }
}
