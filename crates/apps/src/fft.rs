//! FFT — the SPLASH-2 six-step 1D FFT.
//!
//! `n = 2^m` complex values viewed as an `n1 × n1` matrix (`n1 = sqrt(n)`),
//! rows block-partitioned over nodes:
//!
//! 1. transpose, 2. n1-point FFT on each row, 3. twiddle multiply,
//! 4. transpose, 5. n1-point FFT on each row, 6. transpose.
//!
//! The transposes are the famous all-to-all: every node reads a column
//! stripe of every other node's rows. In the paper FFT is one of the two
//! applications with poor scalability — "the dominant part of the parallel
//! overhead is remote memory fetches which account for roughly 77% of the
//! overhead" — and that is exactly what the transpose produces here.

use crate::common::{cexp, chunk_range, cmul, Complex};
use crate::workload::Workload;
use dsm::{DsmCluster, DsmNode, SharedArray};
use netsim::time::us_f64;
use std::f64::consts::PI;
use std::rc::Rc;

/// Cost-model calibration: ns per unit of FFT work (butterflies +
/// element-touch units), set so the paper's 2^22-point instance models to
/// Table 1's 4752 ms sequential time.
pub const NS_PER_UNIT: f64 = 4_752e6 / ((1u64 << 21) as f64 * 22.0 + 4.0 * (1u64 << 22) as f64);

/// FFT problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Fft {
    /// log2 of the point count; must be even (square matrix view).
    pub m: u32,
}

impl Fft {
    /// The paper's instance: 2^22 complex values.
    pub fn paper() -> Self {
        Self { m: 22 }
    }

    /// Total points.
    pub fn n(&self) -> usize {
        1usize << self.m
    }

    /// Matrix side (`sqrt(n)`).
    pub fn n1(&self) -> usize {
        1usize << (self.m / 2)
    }

    /// Abstract work units: butterflies + transpose/twiddle touches.
    pub fn units(&self) -> f64 {
        let n = self.n() as f64;
        n / 2.0 * self.m as f64 + 4.0 * n
    }

    /// Deterministic input value for global index `i`.
    fn input(i: usize) -> Complex {
        let u = crate::common::unit_f64(0xFF7, i as u64);
        let v = crate::common::unit_f64(0x7FF, i as u64);
        [2.0 * u - 1.0, 2.0 * v - 1.0]
    }
}

/// In-place iterative radix-2 FFT (bit-reversal + butterfly passes).
pub fn fft_in_place(a: &mut [Complex]) {
    let n = a.len();
    assert!(n.is_power_of_two());
    // Bit reversal.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wl = cexp(ang);
        for base in (0..n).step_by(len) {
            let mut w: Complex = [1.0, 0.0];
            for k in 0..len / 2 {
                let u = a[base + k];
                let v = cmul(a[base + k + len / 2], w);
                a[base + k] = [u[0] + v[0], u[1] + v[1]];
                a[base + k + len / 2] = [u[0] - v[0], u[1] - v[1]];
                w = cmul(w, wl);
            }
        }
        len <<= 1;
    }
}

/// Naive DFT used to validate the pipeline in tests.
pub fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = [0.0, 0.0];
            for (j, &v) in x.iter().enumerate() {
                let w = cexp(-2.0 * PI * (k * j) as f64 / n as f64);
                let t = cmul(v, w);
                acc = [acc[0] + t[0], acc[1] + t[1]];
            }
            acc
        })
        .collect()
}

fn transpose_host(src: &[Complex], n1: usize) -> Vec<Complex> {
    let mut dst = vec![[0.0; 2]; src.len()];
    for r in 0..n1 {
        for c in 0..n1 {
            dst[c * n1 + r] = src[r * n1 + c];
        }
    }
    dst
}

/// Host-side sequential six-step pipeline — the verification oracle. The
/// parallel kernel performs the identical arithmetic in the identical
/// order, so results match bit-for-bit.
pub fn six_step_host(input: &[Complex], n1: usize) -> Vec<Complex> {
    let mut t = transpose_host(input, n1);
    for r in 0..n1 {
        let row = &mut t[r * n1..(r + 1) * n1];
        fft_in_place(row);
        for (c, v) in row.iter_mut().enumerate() {
            let w = cexp(-2.0 * PI * (r * c) as f64 / (n1 * n1) as f64);
            *v = cmul(*v, w);
        }
    }
    let mut x = transpose_host(&t, n1);
    for r in 0..n1 {
        fft_in_place(&mut x[r * n1..(r + 1) * n1]);
    }
    transpose_host(&x, n1)
}

/// Parallel transpose: `dst[a][b] = src[b][a]`, each node filling its own
/// row block of `dst` by reading column stripes of every row of `src`.
async fn transpose_par(
    node: &DsmNode,
    src: SharedArray<Complex>,
    dst: SharedArray<Complex>,
    n1: usize,
) {
    let p = node.nodes();
    let my = chunk_range(n1, node.id(), p);
    let rows = my.len();
    if rows == 0 {
        return;
    }
    // Every source row contains this node's column stripe, so the whole
    // source array is needed: fault it in as one pipelined burst (the
    // page-granular all-to-all the paper blames FFT's overhead on).
    node.fetch_range(src.addr(0), n1 * n1 * 16).await;
    let mut buf: Vec<Vec<Complex>> = vec![vec![[0.0; 2]; n1]; rows];
    #[allow(clippy::needless_range_loop)] // `b` drives both address math and the transpose index
    for b in 0..n1 {
        // Column stripe [my.start, my.end) of source row b.
        let seg = src.read(node, b * n1 + my.start..b * n1 + my.end).await;
        for (off, v) in seg.into_iter().enumerate() {
            buf[off][b] = v;
        }
    }
    for (off, row) in buf.into_iter().enumerate() {
        dst.write(node, (my.start + off) * n1, &row).await;
    }
    // One unit per element moved.
    node.compute(us_f64(rows as f64 * n1 as f64 * NS_PER_UNIT / 1e3))
        .await;
}

/// Row-block FFT phase, optionally applying the six-step twiddle factors.
async fn fft_rows(node: &DsmNode, arr: SharedArray<Complex>, n1: usize, twiddle: bool) {
    let p = node.nodes();
    let my = chunk_range(n1, node.id(), p);
    let lg = n1.trailing_zeros() as f64;
    for r in my.clone() {
        let mut row = arr.read(node, r * n1..(r + 1) * n1).await;
        fft_in_place(&mut row);
        if twiddle {
            for (c, v) in row.iter_mut().enumerate() {
                let w = cexp(-2.0 * PI * (r * c) as f64 / (n1 * n1) as f64);
                *v = cmul(*v, w);
            }
        }
        arr.write(node, r * n1, &row).await;
        let units = n1 as f64 / 2.0 * lg + if twiddle { n1 as f64 } else { 0.0 };
        node.compute(us_f64(units * NS_PER_UNIT / 1e3)).await;
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn problem(&self) -> String {
        format!("2^{} complex values", self.m)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * NS_PER_UNIT
    }

    fn footprint_bytes(&self) -> u64 {
        // x and trans arrays of n complex doubles.
        2 * self.n() as u64 * 16
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        let n = self.n();
        let n1 = self.n1();
        assert_eq!(n1 * n1, n, "m must be even");
        let x = dsm.alloc_array::<Complex>(n);
        let t = dsm.alloc_array::<Complex>(n);
        let input: Vec<Complex> = (0..n).map(Fft::input).collect();
        let expected = Rc::new(six_step_host(&input, n1));
        let input = Rc::new(input);
        let elapsed = dsm.run_spmd(move |node| {
            let input = input.clone();
            let expected = expected.clone();
            async move {
                let p = node.nodes();
                let my = chunk_range(n1, node.id(), p);
                // Initialize owned rows (local writes).
                for r in my.clone() {
                    x.write(&node, r * n1, &input[r * n1..(r + 1) * n1]).await;
                }
                node.barrier(0).await;
                transpose_par(&node, x, t, n1).await;
                node.barrier(0).await;
                fft_rows(&node, t, n1, true).await;
                node.barrier(0).await;
                transpose_par(&node, t, x, n1).await;
                node.barrier(0).await;
                fft_rows(&node, x, n1, false).await;
                node.barrier(0).await;
                transpose_par(&node, x, t, n1).await;
                node.barrier(0).await;
                // Verify owned rows of the result against the oracle.
                for r in my {
                    let row = t.read(&node, r * n1..(r + 1) * n1).await;
                    for (c, v) in row.iter().enumerate() {
                        let e = expected[r * n1 + c];
                        assert!(
                            (v[0] - e[0]).abs() < 1e-9 && (v[1] - e[1]).abs() < 1e-9,
                            "FFT mismatch at ({r},{c}): {v:?} vs {e:?}"
                        );
                    }
                }
            }
        });
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16).map(Fft::input).collect();
        let mut f = x.clone();
        fft_in_place(&mut f);
        let d = naive_dft(&x);
        for (a, b) in f.iter().zip(&d) {
            assert!((a[0] - b[0]).abs() < 1e-9 && (a[1] - b[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn six_step_equals_direct_fft() {
        // The six-step pipeline computes the same DFT as a flat FFT, up to
        // the final element ordering. Verify against naive DFT directly.
        let m = 6; // n = 64, n1 = 8
        let n = 1usize << m;
        let n1 = 1usize << (m / 2);
        let x: Vec<Complex> = (0..n).map(Fft::input).collect();
        let six = six_step_host(&x, n1);
        let dft = naive_dft(&x);
        // With the final transpose, the six-step pipeline leaves the DFT in
        // natural order: six[i] == DFT[i].
        for (i, (got, want)) in six.iter().zip(&dft).enumerate() {
            assert!(
                (got[0] - want[0]).abs() < 1e-8 && (got[1] - want[1]).abs() < 1e-8,
                "{i}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn calibration_matches_table1() {
        let paper = Fft::paper();
        let ms = paper.modeled_seq_ns() / 1e6;
        assert!((ms - 4752.0).abs() < 1.0, "modeled {ms} ms");
        assert_eq!(paper.footprint_bytes(), 2 * (1 << 22) * 16);
    }

    #[test]
    fn parallel_fft_on_four_nodes_verifies() {
        let sim = netsim::Sim::new(2);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Fft { m: 10 }; // 1024 points, 32x32
        let elapsed = app.run(&dsm);
        assert!(elapsed > 0);
        let stats = dsm.dsm_stats();
        assert!(stats.page_fetches > 0, "transpose must fetch remote rows");
    }
}
