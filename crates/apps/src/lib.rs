//! `apps` — SPLASH-2-style application kernels over the DSM.
//!
//! The paper's Table 1 workloads, reimplemented with the same decomposition
//! and sharing patterns and verified against host-side sequential oracles.
//! Computation is charged to virtual time through per-app cost models
//! calibrated so each paper-sized instance reproduces Table 1's sequential
//! execution time (see each module's `NS_PER_UNIT`).

pub mod barnes;
pub mod common;
pub mod fft;
pub mod lu;
pub mod radix;
pub mod raytrace;
pub mod table;
pub mod water;
pub mod workload;

pub use workload::{run_app, speedup_curve, AppRun, Workload};
