//! LU — the SPLASH-2 blocked dense LU factorization (no pivoting).
//!
//! The matrix is stored block-major (each B×B block contiguous) and blocks
//! are assigned to nodes in a 2D cyclic grid ("owner computes"). Pages are
//! homed at each block's owner, reproducing SPLASH-2's contiguous-block
//! allocation. Per step `k`: the diagonal block is factored, the
//! perimeter row/column is updated, then all interior blocks are updated
//! from their `(i,k)` and `(k,j)` factors — the latter two block reads are
//! the communication.

use crate::common::{chunk_range, unit_f64};
use crate::workload::Workload;
use dsm::{Dist, DsmCluster, DsmNode, SharedArray};
use multiedge::PAGE_SIZE;
use netsim::time::us_f64;
use std::rc::Rc;

/// Block side: 32 doubles → 8 KiB per block = exactly two pages.
pub const B: usize = 32;

/// Cost-model calibration: ns per multiply-accumulate, set so the paper's
/// 8192×8192 instance models to Table 1's 412096 ms sequential time
/// (total MACs ≈ n³/3).
pub const NS_PER_UNIT: f64 = 412_096e6 / (8192f64 * 8192.0 * 8192.0 / 3.0);

/// LU problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Lu {
    /// Matrix side; must be a multiple of [`B`].
    pub n: usize,
}

impl Lu {
    /// The paper's instance: 8192×8192.
    pub fn paper() -> Self {
        Self { n: 8192 }
    }

    /// MAC units.
    pub fn units(&self) -> f64 {
        let n = self.n as f64;
        n * n * n / 3.0
    }

    fn nb(&self) -> usize {
        self.n / B
    }

    /// Deterministic, diagonally dominant input (no pivoting needed).
    fn input(n: usize, r: usize, c: usize) -> f64 {
        let base = 2.0 * unit_f64(0x10, (r * n + c) as u64) - 1.0;
        if r == c {
            base + n as f64
        } else {
            base
        }
    }
}

/// 2D-cyclic block owner.
fn owner(bi: usize, bj: usize, p: usize) -> usize {
    // pr × pc grid with pr*pc == p (powers of two split evenly).
    let pr = 1usize << (p.trailing_zeros() / 2);
    let pc = p / pr;
    (bi % pr) * pc + (bj % pc)
}

/// Flat element offset of block (bi, bj) in block-major storage.
fn block_off(bi: usize, bj: usize, nb: usize) -> usize {
    (bi * nb + bj) * B * B
}

/// Factor a diagonal block in place (unblocked right-looking LU, unit
/// lower-diagonal).
fn factor_diag(a: &mut [f64]) {
    for k in 0..B {
        let pivot = a[k * B + k];
        for i in (k + 1)..B {
            a[i * B + k] /= pivot;
            let l = a[i * B + k];
            for j in (k + 1)..B {
                a[i * B + j] -= l * a[k * B + j];
            }
        }
    }
}

/// Update a column-perimeter block: `A := A · U(diag)^-1`.
fn solve_col(a: &mut [f64], diag: &[f64]) {
    for k in 0..B {
        let pivot = diag[k * B + k];
        for i in 0..B {
            a[i * B + k] /= pivot;
            let l = a[i * B + k];
            for j in (k + 1)..B {
                a[i * B + j] -= l * diag[k * B + j];
            }
        }
    }
}

/// Update a row-perimeter block: `A := L(diag)^-1 · A`.
fn solve_row(a: &mut [f64], diag: &[f64]) {
    for k in 0..B {
        for i in (k + 1)..B {
            let l = diag[i * B + k];
            for j in 0..B {
                a[i * B + j] -= l * a[k * B + j];
            }
        }
    }
}

/// Interior update: `A -= L · U` (B×B matmul-subtract).
fn update_interior(a: &mut [f64], l: &[f64], u: &[f64]) {
    for i in 0..B {
        for k in 0..B {
            let lik = l[i * B + k];
            if lik == 0.0 {
                continue;
            }
            for j in 0..B {
                a[i * B + j] -= lik * u[k * B + j];
            }
        }
    }
}

/// Host-side sequential blocked LU (identical arithmetic and order to the
/// parallel kernel) — the verification oracle.
pub fn lu_host(mat: &mut [Vec<f64>], nb: usize) {
    // mat[bi*nb+bj] is the block.
    for k in 0..nb {
        let mut diag = mat[k * nb + k].clone();
        factor_diag(&mut diag);
        mat[k * nb + k] = diag.clone();
        for j in (k + 1)..nb {
            let mut blk = mat[k * nb + j].clone();
            solve_row(&mut blk, &diag);
            mat[k * nb + j] = blk;
        }
        for i in (k + 1)..nb {
            let mut blk = mat[i * nb + k].clone();
            solve_col(&mut blk, &diag);
            mat[i * nb + k] = blk;
        }
        for i in (k + 1)..nb {
            let l = mat[i * nb + k].clone();
            for j in (k + 1)..nb {
                let u = mat[k * nb + j].clone();
                let blk = &mut mat[i * nb + j];
                update_interior(blk, &l, &u);
            }
        }
    }
}

async fn read_block(node: &DsmNode, arr: SharedArray<f64>, off: usize) -> Vec<f64> {
    arr.read(node, off..off + B * B).await
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn problem(&self) -> String {
        format!("{}x{} matrix", self.n, self.n)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * NS_PER_UNIT
    }

    fn footprint_bytes(&self) -> u64 {
        (self.n * self.n) as u64 * 8
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        let n = self.n;
        let nb = self.nb();
        assert_eq!(nb * B, n, "n must be a multiple of B");
        let p = dsm.len();
        // Home pages at their block's owner (a block is exactly 2 pages).
        let pages_per_block = (B * B * 8) / PAGE_SIZE;
        let mut homes = Vec::with_capacity(nb * nb * pages_per_block);
        for bi in 0..nb {
            for bj in 0..nb {
                for _ in 0..pages_per_block {
                    homes.push(owner(bi, bj, p));
                }
            }
        }
        let arr = dsm.alloc_array_dist::<f64>(n * n, Dist::Custom(homes));
        // Host oracle.
        let mut blocks: Vec<Vec<f64>> = Vec::with_capacity(nb * nb);
        for bi in 0..nb {
            for bj in 0..nb {
                let mut blk = vec![0.0; B * B];
                for r in 0..B {
                    for c in 0..B {
                        blk[r * B + c] = Lu::input(n, bi * B + r, bj * B + c);
                    }
                }
                blocks.push(blk);
            }
        }
        let orig = Rc::new(blocks.clone());
        lu_host(&mut blocks, nb);
        let expected = Rc::new(blocks);
        dsm.run_spmd(move |node| {
            let orig = orig.clone();
            let expected = expected.clone();
            async move {
                let p = node.nodes();
                let me = node.id();
                // Init owned blocks.
                for bi in 0..nb {
                    for bj in 0..nb {
                        if owner(bi, bj, p) == me {
                            arr.write(&node, block_off(bi, bj, nb), &orig[bi * nb + bj])
                                .await;
                        }
                    }
                }
                node.barrier(0).await;
                for k in 0..nb {
                    // Diagonal factorization by its owner.
                    if owner(k, k, p) == me {
                        let off = block_off(k, k, nb);
                        let mut d = read_block(&node, arr, off).await;
                        factor_diag(&mut d);
                        arr.write(&node, off, &d).await;
                        node.compute(us_f64(
                            (B * B * B) as f64 / 3.0 * NS_PER_UNIT / 1e3,
                        ))
                        .await;
                    }
                    node.barrier(0).await;
                    // Prefetch everything this step needs in one burst: the
                    // diagonal plus the pivot row/column blocks feeding my
                    // perimeter and interior updates.
                    {
                        let mut wanted: Vec<(u64, usize)> =
                            vec![(arr.addr(block_off(k, k, nb)), B * B * 8)];
                        for i in (k + 1)..nb {
                            for j in (k + 1)..nb {
                                if owner(i, j, p) == me {
                                    wanted.push((arr.addr(block_off(i, k, nb)), B * B * 8));
                                    wanted.push((arr.addr(block_off(k, j, nb)), B * B * 8));
                                }
                            }
                        }
                        node.fetch_ranges(&wanted).await;
                    }
                    // Perimeter.
                    let diag = read_block(&node, arr, block_off(k, k, nb)).await;
                    for j in (k + 1)..nb {
                        if owner(k, j, p) == me {
                            let off = block_off(k, j, nb);
                            let mut blk = read_block(&node, arr, off).await;
                            solve_row(&mut blk, &diag);
                            arr.write(&node, off, &blk).await;
                            node.compute(us_f64(
                                (B * B * B) as f64 / 2.0 * NS_PER_UNIT / 1e3,
                            ))
                            .await;
                        }
                    }
                    for i in (k + 1)..nb {
                        if owner(i, k, p) == me {
                            let off = block_off(i, k, nb);
                            let mut blk = read_block(&node, arr, off).await;
                            solve_col(&mut blk, &diag);
                            arr.write(&node, off, &blk).await;
                            node.compute(us_f64(
                                (B * B * B) as f64 / 2.0 * NS_PER_UNIT / 1e3,
                            ))
                            .await;
                        }
                    }
                    node.barrier(0).await;
                    // Interior updates (the bulk of compute and of the
                    // remote block fetches).
                    for i in (k + 1)..nb {
                        for j in (k + 1)..nb {
                            if owner(i, j, p) == me {
                                let l = read_block(&node, arr, block_off(i, k, nb)).await;
                                let u = read_block(&node, arr, block_off(k, j, nb)).await;
                                let off = block_off(i, j, nb);
                                let mut blk = read_block(&node, arr, off).await;
                                update_interior(&mut blk, &l, &u);
                                arr.write(&node, off, &blk).await;
                                node.compute(us_f64(
                                    (B * B * B) as f64 * NS_PER_UNIT / 1e3,
                                ))
                                .await;
                            }
                        }
                    }
                    node.barrier(0).await;
                }
                // Verify owned blocks.
                for bi in 0..nb {
                    for bj in 0..nb {
                        if owner(bi, bj, p) != me {
                            continue;
                        }
                        let got = read_block(&node, arr, block_off(bi, bj, nb)).await;
                        let want = &expected[bi * nb + bj];
                        for (g, w) in got.iter().zip(want) {
                            assert!(
                                (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                                "LU mismatch in block ({bi},{bj}): {g} vs {w}"
                            );
                        }
                    }
                }
                // Keep chunk_range linked for symmetry with other kernels.
                let _ = chunk_range(nb, me, p);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_lu_factors_correctly() {
        // Verify L·U == A on a small blocked matrix.
        let n = 2 * B;
        let nb = n / B;
        let mut blocks: Vec<Vec<f64>> = Vec::new();
        for bi in 0..nb {
            for bj in 0..nb {
                let mut blk = vec![0.0; B * B];
                for r in 0..B {
                    for c in 0..B {
                        blk[r * B + c] = Lu::input(n, bi * B + r, bj * B + c);
                    }
                }
                blocks.push(blk);
            }
        }
        let orig = blocks.clone();
        lu_host(&mut blocks, nb);
        // Reconstruct dense L and U and multiply.
        let get = |bs: &Vec<Vec<f64>>, r: usize, c: usize| -> f64 {
            bs[(r / B) * nb + (c / B)][(r % B) * B + (c % B)]
        };
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    let l = if k < r {
                        get(&blocks, r, k)
                    } else if k == r {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= c { get(&blocks, k, c) } else { 0.0 };
                    sum += l * u;
                }
                let a = get(&orig, r, c);
                assert!(
                    (sum - a).abs() < 1e-6 * a.abs().max(1.0),
                    "L*U mismatch at ({r},{c}): {sum} vs {a}"
                );
            }
        }
    }

    #[test]
    fn owner_grid_covers_all_nodes() {
        for p in [1usize, 2, 4, 8, 16] {
            let mut seen = vec![false; p];
            for bi in 0..8 {
                for bj in 0..8 {
                    let o = owner(bi, bj, p);
                    assert!(o < p);
                    seen[o] = true;
                }
            }
            assert!(seen.into_iter().all(|b| b), "p={p}");
        }
    }

    #[test]
    fn calibration_matches_table1() {
        let ms = Lu::paper().modeled_seq_ns() / 1e6;
        assert!((ms - 412_096.0).abs() < 1.0, "modeled {ms} ms");
    }

    #[test]
    fn parallel_lu_verifies_on_four_nodes() {
        let sim = netsim::Sim::new(9);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Lu { n: 4 * B }; // 128x128
        let elapsed = app.run(&dsm);
        assert!(elapsed > 0);
        assert!(dsm.dsm_stats().page_fetches > 0);
    }
}
