//! Water — molecular dynamics in three SPLASH-2 flavors.
//!
//! * **Water-Nsquared** — all-pairs forces with Newton symmetry; partial
//!   force vectors are merged into the shared array under a global
//!   accumulation lock (the SPLASH lock-phase), then positions integrate.
//!   Compute is O(n²/p), so it scales well (paper: speedups 13–14).
//! * **Water-Spatial** — a uniform cell grid with interactions limited to
//!   the 27-cell neighborhood; nodes own slabs of cells and fetch neighbor
//!   boundary planes (paper: medium speedups 6–8).
//! * **Water-SpatialFL** — the same computation, but cell updates are
//!   protected by per-cell fine-grained locks instead of relying on the
//!   slab partition alone; results are identical, lock traffic is not
//!   (paper: performance nearly identical to Water-Spatial).

use crate::common::{chunk_range, unit_f64};
use crate::workload::Workload;
use dsm::DsmCluster;
use netsim::time::us_f64;
use std::rc::Rc;

/// Interaction cutoff radius (box units).
const CUTOFF: f64 = 0.1;
/// Integration timestep.
const DT: f64 = 1e-3;

/// Which flavor to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaterKind {
    /// All-pairs with lock-phase reduction.
    NSquared,
    /// Cell grid, slab ownership, barrier-only.
    Spatial,
    /// Cell grid with per-cell fine-grained locks.
    SpatialFineLocks,
}

impl WaterKind {
    /// Table-1 name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::NSquared => "Water-Nsq",
            Self::Spatial => "Water-Sp",
            Self::SpatialFineLocks => "Water-SpFL",
        }
    }
}

/// Cost calibration (ns per abstract unit), per variant, so that the
/// paper-sized instances (128K molecules, 3 steps as defined by
/// [`Water::paper`]) model to Table 1's sequential times.
fn ns_per_unit(kind: WaterKind) -> f64 {
    let paper = Water::paper(kind);
    match kind {
        WaterKind::NSquared => 11_678_974e6 / paper.units(),
        WaterKind::Spatial => 231_889e6 / paper.units(),
        WaterKind::SpatialFineLocks => 229_586e6 / paper.units(),
    }
}

/// Water problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Water {
    /// Molecule count.
    pub molecules: usize,
    /// Timesteps.
    pub steps: usize,
    /// Flavor.
    pub kind: WaterKind,
}

impl Water {
    /// The paper's instance: 128K molecules (3 steps here).
    pub fn paper(kind: WaterKind) -> Self {
        Self {
            molecules: 128 << 10,
            steps: 3,
            kind,
        }
    }

    /// Abstract units for the cost model. For the spatial variants the
    /// unit is one neighbor-scan iteration (27 cells × average occupancy),
    /// exactly what the parallel kernel counts.
    pub fn units(&self) -> f64 {
        let n = self.molecules as f64;
        let s = self.steps as f64;
        match self.kind {
            WaterKind::NSquared => (n * (n - 1.0) / 2.0 + n) * s,
            WaterKind::Spatial | WaterKind::SpatialFineLocks => {
                let ncells = Grid::new().ncells() as f64;
                (n * 27.0 * (n / ncells) + n) * s
            }
        }
    }

    /// Cell capacity for the spatial variants (scales with occupancy).
    fn cell_cap(&self) -> usize {
        let ncells = Grid::new().ncells();
        (4 * self.molecules / ncells).max(32)
    }

    fn init_pos(i: usize) -> [f64; 3] {
        [
            unit_f64(0x3A1, i as u64),
            unit_f64(0x3A2, i as u64),
            unit_f64(0x3A3, i as u64),
        ]
    }
}

/// One molecule: (id, position, velocity).
type Molecule = (usize, [f64; 3], [f64; 3]);
/// Pending cell update in phase 2: (cell, new positions, new velocities).
type CellUpdate = (usize, Vec<[f64; 3]>, Vec<[f64; 3]>);

/// Short-range pair force on `a` from `b` (soft repulsive, cutoff).
fn pair_force(a: [f64; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if !(1e-12..CUTOFF * CUTOFF).contains(&r2) {
        return None;
    }
    let inv = 1.0 / (r2 + 1e-4) - 1.0 / (CUTOFF * CUTOFF + 1e-4);
    Some([d[0] * inv, d[1] * inv, d[2] * inv])
}

/// Host oracle for the N² variant: symmetric all-pairs, then integrate.
/// (Accumulation order differs from the parallel reduction, so comparisons
/// use a tolerance.)
fn host_nsq(pos: &mut [[f64; 3]], vel: &mut [[f64; 3]], steps: usize) {
    let n = pos.len();
    for _ in 0..steps {
        let mut f = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(ff) = pair_force(pos[i], pos[j]) {
                    for k in 0..3 {
                        f[i][k] += ff[k];
                        f[j][k] -= ff[k];
                    }
                }
            }
        }
        for i in 0..n {
            for k in 0..3 {
                vel[i][k] += f[i][k] * DT;
                pos[i][k] = (pos[i][k] + vel[i][k] * DT).rem_euclid(1.0);
            }
        }
    }
}

/// Cell index helpers for the spatial variants.
struct Grid {
    m: usize, // cells per dimension
}

impl Grid {
    fn new() -> Self {
        // Cell side must be ≥ CUTOFF.
        let m = (1.0 / CUTOFF).floor() as usize;
        Self { m: m.max(1) }
    }
    fn ncells(&self) -> usize {
        self.m * self.m * self.m
    }
    fn cell_of(&self, p: [f64; 3]) -> usize {
        let f = |x: f64| (((x.rem_euclid(1.0)) * self.m as f64) as usize).min(self.m - 1);
        // x-major so slabs of constant x are contiguous cell indices.
        f(p[0]) * self.m * self.m + f(p[1]) * self.m + f(p[2])
    }
    fn neighbors(&self, c: usize) -> Vec<usize> {
        let m = self.m;
        let (x, y, z) = (c / (m * m), (c / m) % m, c % m);
        let mut out = Vec::with_capacity(27);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nx = (x as i64 + dx).rem_euclid(m as i64) as usize;
                    let ny = (y as i64 + dy).rem_euclid(m as i64) as usize;
                    let nz = (z as i64 + dz).rem_euclid(m as i64) as usize;
                    let nc = nx * m * m + ny * m + nz;
                    if !out.contains(&nc) {
                        out.push(nc);
                    }
                }
            }
        }
        out
    }
}

/// Host oracle for the spatial variants (identical arithmetic to the
/// parallel kernel: per-molecule full neighbor sum, no symmetry).
/// Note: molecules do not migrate between cells across steps (small DT,
/// re-binning clamped — documented simplification mirrored here).
fn host_spatial(
    cells: &mut [Vec<Molecule>],
    grid: &Grid,
    steps: usize,
) {
    for _ in 0..steps {
        let snapshot: Vec<Vec<[f64; 3]>> = cells
            .iter()
            .map(|c| c.iter().map(|&(_, p, _)| p).collect())
            .collect();
        #[allow(clippy::needless_range_loop)] // `c` is compared against neighbor ids, not just an index
        for c in 0..cells.len() {
            let neigh = grid.neighbors(c);
            for mi in 0..cells[c].len() {
                let (_, p, _) = cells[c][mi];
                let mut f = [0.0f64; 3];
                for &nc in &neigh {
                    for (oi, &op) in snapshot[nc].iter().enumerate() {
                        if nc == c && oi == mi {
                            continue;
                        }
                        if let Some(ff) = pair_force(p, op) {
                            for (fk, ffk) in f.iter_mut().zip(ff) {
                                *fk += ffk;
                            }
                        }
                    }
                }
                let m = &mut cells[c][mi];
                for k in 0..3 {
                    m.2[k] += f[k] * DT;
                    m.1[k] = (m.1[k] + m.2[k] * DT).rem_euclid(1.0);
                }
            }
        }
    }
}

impl Workload for Water {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn problem(&self) -> String {
        format!("{} molecules, {} steps", self.molecules, self.steps)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * ns_per_unit(self.kind)
    }

    fn footprint_bytes(&self) -> u64 {
        match self.kind {
            // pos + vel + force arrays.
            WaterKind::NSquared => self.molecules as u64 * 72,
            // cell-major pos/vel with slack + counts.
            WaterKind::Spatial | WaterKind::SpatialFineLocks => {
                let g = Grid::new();
                (g.ncells() * self.cell_cap()) as u64 * 48 + g.ncells() as u64 * 4
            }
        }
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        match self.kind {
            WaterKind::NSquared => self.run_nsq(dsm),
            WaterKind::Spatial | WaterKind::SpatialFineLocks => self.run_spatial(dsm),
        }
    }
}

impl Water {
    fn run_nsq(&self, dsm: &DsmCluster) -> u64 {
        let n = self.molecules;
        let steps = self.steps;
        let ns = ns_per_unit(self.kind);
        let pos = dsm.alloc_array::<[f64; 3]>(n);
        let vel = dsm.alloc_array::<[f64; 3]>(n);
        let force = dsm.alloc_array::<[f64; 3]>(n);
        let mut hpos: Vec<[f64; 3]> = (0..n).map(Water::init_pos).collect();
        let mut hvel = vec![[0.0f64; 3]; n];
        let init_pos = Rc::new(hpos.clone());
        host_nsq(&mut hpos, &mut hvel, steps);
        let expected = Rc::new(hpos);
        dsm.run_spmd(move |node| {
            let init_pos = init_pos.clone();
            let expected = expected.clone();
            async move {
                let p = node.nodes();
                let me = node.id();
                let my = chunk_range(n, me, p);
                pos.write(&node, my.start, &init_pos[my.clone()]).await;
                vel.write(&node, my.start, &vec![[0.0; 3]; my.len()]).await;
                force.write(&node, my.start, &vec![[0.0; 3]; my.len()]).await;
                node.barrier(0).await;
                for _ in 0..steps {
                    let all = pos.read(&node, 0..n).await;
                    // Interleaved i-rows for load balance; symmetric pairs.
                    let mut local = vec![[0.0f64; 3]; n];
                    let mut pairs = 0u64;
                    let mut i = me;
                    while i < n {
                        for j in (i + 1)..n {
                            pairs += 1;
                            if let Some(ff) = pair_force(all[i], all[j]) {
                                for k in 0..3 {
                                    local[i][k] += ff[k];
                                    local[j][k] -= ff[k];
                                }
                            }
                        }
                        i += p;
                    }
                    node.compute(us_f64(pairs as f64 * ns / 1e3)).await;
                    // Lock-phase reduction into the shared force array.
                    node.lock(3).await;
                    node.fetch_ranges(&[(force.addr(0), n * 24)]).await;
                    const CHUNK: usize = 1024;
                    let mut at = 0;
                    while at < n {
                        let hi = (at + CHUNK).min(n);
                        let mut cur = force.read(&node, at..hi).await;
                        for (off, c) in cur.iter_mut().enumerate() {
                            for k in 0..3 {
                                c[k] += local[at + off][k];
                            }
                        }
                        force.write(&node, at, &cur).await;
                        at = hi;
                    }
                    node.unlock(3).await;
                    node.barrier(0).await;
                    // Integrate own range, clear forces.
                    let f = force.read(&node, my.clone()).await;
                    let mut v = vel.read(&node, my.clone()).await;
                    let mut x = pos.read(&node, my.clone()).await;
                    for off in 0..my.len() {
                        for k in 0..3 {
                            v[off][k] += f[off][k] * DT;
                            x[off][k] = (x[off][k] + v[off][k] * DT).rem_euclid(1.0);
                        }
                    }
                    node.compute(us_f64(my.len() as f64 * ns / 1e3)).await;
                    pos.write(&node, my.start, &x).await;
                    vel.write(&node, my.start, &v).await;
                    force
                        .write(&node, my.start, &vec![[0.0; 3]; my.len()])
                        .await;
                    node.barrier(0).await;
                }
                let got = pos.read(&node, my.clone()).await;
                for (off, i) in my.clone().enumerate() {
                    for k in 0..3 {
                        assert!(
                            (got[off][k] - expected[i][k]).abs() < 1e-6,
                            "Water-Nsq mismatch molecule {i} dim {k}: {} vs {}",
                            got[off][k],
                            expected[i][k]
                        );
                    }
                }
            }
        })
    }

    fn run_spatial(&self, dsm: &DsmCluster) -> u64 {
        let n = self.molecules;
        let steps = self.steps;
        let ns = ns_per_unit(self.kind);
        let fine_locks = self.kind == WaterKind::SpatialFineLocks;
        let cell_cap = self.cell_cap();
        let grid = Grid::new();
        let ncells = grid.ncells();
        // Bin molecules on the host (same binning is the initial state for
        // both the oracle and the parallel kernel).
        let mut cells: Vec<Vec<Molecule>> = vec![Vec::new(); ncells];
        for i in 0..n {
            let p = Water::init_pos(i);
            let c = grid.cell_of(p);
            assert!(
                cells[c].len() < cell_cap,
                "cell capacity exceeded; lower the molecule count"
            );
            cells[c].push((i, p, [0.0; 3]));
        }
        let init_cells = Rc::new(cells.clone());
        host_spatial(&mut cells, &grid, steps);
        let expected = Rc::new(cells);
        // Shared cell-major state.
        let cpos = dsm.alloc_array::<[f64; 3]>(ncells * cell_cap);
        let cvel = dsm.alloc_array::<[f64; 3]>(ncells * cell_cap);
        let ccount = dsm.alloc_array::<u32>(ncells);
        let grid = Rc::new(grid);
        dsm.run_spmd(move |node| {
            let init_cells = init_cells.clone();
            let expected = expected.clone();
            let grid = grid.clone();
            async move {
                let p = node.nodes();
                let me = node.id();
                let my_cells = chunk_range(ncells, me, p);
                // Init owned cells.
                for c in my_cells.clone() {
                    let cell = &init_cells[c];
                    ccount.set(&node, c, cell.len() as u32).await;
                    if !cell.is_empty() {
                        let ps: Vec<[f64; 3]> = cell.iter().map(|&(_, p, _)| p).collect();
                        let vs: Vec<[f64; 3]> = cell.iter().map(|&(_, _, v)| v).collect();
                        cpos.write(&node, c * cell_cap, &ps).await;
                        cvel.write(&node, c * cell_cap, &vs).await;
                    }
                }
                node.barrier(0).await;
                for _ in 0..steps {
                    // Snapshot the neighborhood (own slab + boundary
                    // fetches). Read counts + positions for all cells in
                    // the neighborhood of any owned cell.
                    let mut needed: Vec<usize> = Vec::new();
                    for c in my_cells.clone() {
                        for nc in grid.neighbors(c) {
                            if !needed.contains(&nc) {
                                needed.push(nc);
                            }
                        }
                    }
                    // One pipelined burst for the counts array and every
                    // needed cell's positions (own slab + boundary planes).
                    {
                        let mut wanted: Vec<(u64, usize)> =
                            vec![(ccount.addr(0), ncells * 4)];
                        for &nc in &needed {
                            wanted.push((cpos.addr(nc * cell_cap), cell_cap * 24));
                        }
                        node.fetch_ranges(&wanted).await;
                    }
                    let mut snap_pos: std::collections::HashMap<usize, Vec<[f64; 3]>> =
                        std::collections::HashMap::new();
                    for &nc in &needed {
                        let cnt = ccount.get(&node, nc).await as usize;
                        let ps = if cnt > 0 {
                            cpos.read(&node, nc * cell_cap..nc * cell_cap + cnt).await
                        } else {
                            Vec::new()
                        };
                        snap_pos.insert(nc, ps);
                    }
                    // Phase 1: compute new state for owned cells from the
                    // snapshot — no shared writes yet, so no node can
                    // observe a mixture of old and new positions.
                    let mut units = 0u64;
                    let mut updates: Vec<CellUpdate> = Vec::new();
                    for c in my_cells.clone() {
                        let mine = snap_pos[&c].clone();
                        if mine.is_empty() {
                            continue;
                        }
                        let cnt = mine.len();
                        let mut vs = cvel.read(&node, c * cell_cap..c * cell_cap + cnt).await;
                        let mut ps = mine.clone();
                        for mi in 0..cnt {
                            let mut f = [0.0f64; 3];
                            for nc in grid.neighbors(c) {
                                for (oi, op) in snap_pos[&nc].iter().enumerate() {
                                    if nc == c && oi == mi {
                                        continue;
                                    }
                                    units += 1;
                                    if let Some(ff) = pair_force(mine[mi], *op) {
                                        for (fk, ffk) in f.iter_mut().zip(ff) {
                                            *fk += ffk;
                                        }
                                    }
                                }
                            }
                            for k in 0..3 {
                                vs[mi][k] += f[k] * DT;
                                ps[mi][k] = (ps[mi][k] + vs[mi][k] * DT).rem_euclid(1.0);
                            }
                        }
                        updates.push((c, ps, vs));
                    }
                    node.compute(us_f64(units as f64 * ns / 1e3)).await;
                    node.barrier(0).await;
                    // Phase 2: publish updates (per-cell locks in the FL
                    // variant guard each cell's update).
                    for (c, ps, vs) in updates {
                        if fine_locks {
                            node.lock(1000 + c as u32).await;
                        }
                        cpos.write(&node, c * cell_cap, &ps).await;
                        cvel.write(&node, c * cell_cap, &vs).await;
                        if fine_locks {
                            node.unlock(1000 + c as u32).await;
                        }
                    }
                    node.barrier(0).await;
                }
                // Verify owned cells.
                for c in my_cells.clone() {
                    let want = &expected[c];
                    let cnt = ccount.get(&node, c).await as usize;
                    assert_eq!(cnt, want.len(), "cell {c} count");
                    if cnt == 0 {
                        continue;
                    }
                    let got = cpos.read(&node, c * cell_cap..c * cell_cap + cnt).await;
                    for (mi, g) in got.iter().enumerate() {
                        #[allow(clippy::needless_range_loop)] // `k` indexes `g` and `want` symmetrically
                        for k in 0..3 {
                            assert!(
                                (g[k] - want[mi].1[k]).abs() < 1e-9,
                                "Water-Sp mismatch cell {c} mol {mi} dim {k}: got {} want {} (node {})",
                                g[k], want[mi].1[k], node.id()
                            );
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_force_is_antisymmetric_and_cutoff() {
        let a = [0.10, 0.10, 0.10];
        let b = [0.15, 0.10, 0.10];
        let fab = pair_force(a, b).expect("within cutoff");
        let fba = pair_force(b, a).expect("within cutoff");
        for k in 0..3 {
            assert!((fab[k] + fba[k]).abs() < 1e-12);
        }
        assert!(pair_force(a, [0.5, 0.5, 0.5]).is_none(), "beyond cutoff");
    }

    #[test]
    fn grid_neighbors_include_self_and_cover_27() {
        let g = Grid::new();
        assert!(g.m >= 3);
        let c = g.cell_of([0.5, 0.5, 0.5]);
        let neigh = g.neighbors(c);
        assert!(neigh.contains(&c));
        assert_eq!(neigh.len(), 27);
    }

    #[test]
    fn calibration_matches_table1() {
        for (kind, want_ms) in [
            (WaterKind::NSquared, 11_678_974.0),
            (WaterKind::Spatial, 231_889.0),
            (WaterKind::SpatialFineLocks, 229_586.0),
        ] {
            let ms = Water::paper(kind).modeled_seq_ns() / 1e6;
            assert!((ms - want_ms).abs() < 1.0, "{kind:?}: modeled {ms} ms");
        }
    }

    #[test]
    fn nsq_verifies_on_four_nodes() {
        let sim = netsim::Sim::new(8);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Water {
            molecules: 96,
            steps: 2,
            kind: WaterKind::NSquared,
        };
        assert!(app.run(&dsm) > 0);
        assert!(dsm.dsm_stats().lock_acquires >= 8, "lock-phase reduction");
    }

    #[test]
    fn spatial_verifies_on_one_node() {
        let sim = netsim::Sim::new(8);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(1));
        let app = Water {
            molecules: 400,
            steps: 2,
            kind: WaterKind::Spatial,
        };
        assert!(app.run(&dsm) > 0);
    }

    #[test]
    fn spatial_verifies_on_four_nodes() {
        let sim = netsim::Sim::new(8);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Water {
            molecules: 400,
            steps: 2,
            kind: WaterKind::Spatial,
        };
        assert!(app.run(&dsm) > 0);
    }

    #[test]
    fn fine_locks_variant_matches_spatial_results_with_more_locks() {
        let run = |kind| {
            let sim = netsim::Sim::new(8);
            let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
            let app = Water {
                molecules: 300,
                steps: 2,
                kind,
            };
            app.run(&dsm);
            dsm.dsm_stats()
        };
        let sp = run(WaterKind::Spatial);
        let fl = run(WaterKind::SpatialFineLocks);
        assert!(fl.lock_acquires > sp.lock_acquires);
    }
}
