//! Barnes — hierarchical N-body (the paper's "Barnes-Spatial" variant).
//!
//! Each timestep every node reads the full body arrays (positions spread
//! block-wise over homes), builds a local octree replica, computes
//! Barnes-Hut forces for its own body range (θ-criterion), and writes back
//! its bodies' updated state. Compute dominates communication, which is why
//! the paper places Barnes in the "scales well, speedups 13–14" category.

use crate::common::{chunk_range, unit_f64};
use crate::workload::Workload;
use dsm::DsmCluster;
use netsim::time::us_f64;
use std::rc::Rc;

/// Opening criterion.
const THETA: f64 = 0.6;
/// Softening length (avoids singularities).
const EPS2: f64 = 1e-4;
/// Leaf capacity of the octree.
const LEAF: usize = 8;

/// Cost-model calibration: ns per body-cell interaction, set so the paper's
/// 128K-body, 8-step instance models to Table 1's 2877713 ms sequential
/// time. Interactions per body per step are estimated as `28·log2(n)`
/// (an empirical Barnes-Hut fit at θ=0.6).
pub const NS_PER_UNIT: f64 = {
    let n = 131_072.0;
    let steps = 8.0;
    let log2n = 17.0;
    2_877_713e6 / (n * steps * 28.0 * log2n)
};

/// Barnes problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Barnes {
    /// Number of bodies.
    pub bodies: usize,
    /// Timesteps.
    pub steps: usize,
}

impl Barnes {
    /// The paper's instance: 128K particles (8 steps).
    pub fn paper() -> Self {
        Self {
            bodies: 128 << 10,
            steps: 8,
        }
    }

    /// Estimated interaction units.
    pub fn units(&self) -> f64 {
        let n = self.bodies as f64;
        n * self.steps as f64 * 28.0 * n.log2()
    }

    fn init_pos(i: usize) -> [f64; 3] {
        [
            unit_f64(0xB0D1, i as u64),
            unit_f64(0xB0D2, i as u64),
            unit_f64(0xB0D3, i as u64),
        ]
    }
}

/// A node of the octree replica built locally each step.
enum Octree {
    Leaf {
        bodies: Vec<usize>,
    },
    Cell {
        center_of_mass: [f64; 3],
        mass: f64,
        size: f64,
        children: Vec<Octree>,
    },
    Empty,
}

fn build_octree(idx: &[usize], pos: &[[f64; 3]], mass: &[f64], lo: [f64; 3], size: f64) -> Octree {
    if idx.is_empty() {
        return Octree::Empty;
    }
    if idx.len() <= LEAF {
        return Octree::Leaf {
            bodies: idx.to_vec(),
        };
    }
    let half = size / 2.0;
    let mid = [lo[0] + half, lo[1] + half, lo[2] + half];
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 8];
    for &b in idx {
        let p = pos[b];
        let o = usize::from(p[0] >= mid[0])
            | (usize::from(p[1] >= mid[1]) << 1)
            | (usize::from(p[2] >= mid[2]) << 2);
        buckets[o].push(b);
    }
    let mut total_mass = 0.0;
    let mut com = [0.0; 3];
    for &b in idx {
        total_mass += mass[b];
        for d in 0..3 {
            com[d] += mass[b] * pos[b][d];
        }
    }
    for c in com.iter_mut() {
        *c /= total_mass.max(1e-300);
    }
    let children = (0..8)
        .map(|o| {
            let clo = [
                if o & 1 != 0 { mid[0] } else { lo[0] },
                if o & 2 != 0 { mid[1] } else { lo[1] },
                if o & 4 != 0 { mid[2] } else { lo[2] },
            ];
            build_octree(&buckets[o], pos, mass, clo, half)
        })
        .collect();
    Octree::Cell {
        center_of_mass: com,
        mass: total_mass,
        size,
        children,
    }
}

/// Barnes-Hut force on body `i`; returns (acc, interactions).
fn force_on(i: usize, tree: &Octree, pos: &[[f64; 3]], mass: &[f64]) -> ([f64; 3], u64) {
    let mut acc = [0.0; 3];
    let mut count = 0u64;
    let mut stack = vec![tree];
    let pi = pos[i];
    while let Some(node) = stack.pop() {
        match node {
            Octree::Empty => {}
            Octree::Leaf { bodies } => {
                for &j in bodies {
                    if j == i {
                        continue;
                    }
                    let d = [pos[j][0] - pi[0], pos[j][1] - pi[1], pos[j][2] - pi[2]];
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                    let inv = mass[j] / (r2 * r2.sqrt());
                    for k in 0..3 {
                        acc[k] += d[k] * inv;
                    }
                    count += 1;
                }
            }
            Octree::Cell {
                center_of_mass,
                mass: m,
                size,
                children,
            } => {
                let d = [
                    center_of_mass[0] - pi[0],
                    center_of_mass[1] - pi[1],
                    center_of_mass[2] - pi[2],
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                if size * size < THETA * THETA * r2 {
                    let inv = m / (r2 * r2.sqrt());
                    for k in 0..3 {
                        acc[k] += d[k] * inv;
                    }
                    count += 1;
                } else {
                    for c in children {
                        stack.push(c);
                    }
                }
            }
        }
    }
    (acc, count)
}

/// One host-side step over all bodies (the oracle runs this `steps` times).
fn host_step(pos: &mut [[f64; 3]], vel: &mut [[f64; 3]], mass: &[f64]) {
    let n = pos.len();
    let idx: Vec<usize> = (0..n).collect();
    let tree = build_octree(&idx, pos, mass, [-2.0; 3], 8.0);
    let dt = 1e-3;
    let accs: Vec<[f64; 3]> = (0..n).map(|i| force_on(i, &tree, pos, mass).0).collect();
    for i in 0..n {
        for k in 0..3 {
            vel[i][k] += accs[i][k] * dt;
            pos[i][k] += vel[i][k] * dt;
        }
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn problem(&self) -> String {
        format!("{} particles, {} steps", self.bodies, self.steps)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * NS_PER_UNIT
    }

    fn footprint_bytes(&self) -> u64 {
        // pos + vel (3 f64 each) + mass (1 f64) per body.
        self.bodies as u64 * (24 + 24 + 8)
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        let n = self.bodies;
        let steps = self.steps;
        let pos = dsm.alloc_array::<[f64; 3]>(n);
        let vel = dsm.alloc_array::<[f64; 3]>(n);
        let mass = dsm.alloc_array::<f64>(n);
        // Host oracle.
        let mut hpos: Vec<[f64; 3]> = (0..n).map(Barnes::init_pos).collect();
        let mut hvel = vec![[0.0f64; 3]; n];
        let hmass: Vec<f64> = (0..n).map(|i| 0.5 + unit_f64(0xBAA5, i as u64)).collect();
        let init_pos = hpos.clone();
        let init_mass = hmass.clone();
        for _ in 0..steps {
            host_step(&mut hpos, &mut hvel, &hmass);
        }
        let expected = Rc::new(hpos);
        let init_pos = Rc::new(init_pos);
        let init_mass = Rc::new(init_mass);
        dsm.run_spmd(move |node| {
            let expected = expected.clone();
            let init_pos = init_pos.clone();
            let init_mass = init_mass.clone();
            async move {
                let p = node.nodes();
                let my = chunk_range(n, node.id(), p);
                // Init owned range (local homes).
                pos.write(&node, my.start, &init_pos[my.clone()]).await;
                vel.write(&node, my.start, &vec![[0.0; 3]; my.len()]).await;
                mass.write(&node, my.start, &init_mass[my.clone()]).await;
                node.barrier(0).await;
                let dt = 1e-3;
                for _ in 0..steps {
                    // Read the whole body set (remote fetches), build the
                    // local tree replica.
                    let all_pos = pos.read(&node, 0..n).await;
                    let all_mass = mass.read(&node, 0..n).await;
                    let idx: Vec<usize> = (0..n).collect();
                    let tree = build_octree(&idx, &all_pos, &all_mass, [-2.0; 3], 8.0);
                    // Tree build cost: ~2 units per body.
                    node.compute(us_f64(2.0 * n as f64 * NS_PER_UNIT / 1e3)).await;
                    // Forces + integration for owned bodies. Compute is
                    // charged by the same per-body formula the sequential
                    // model uses, so speedups are internally consistent.
                    let mut my_vel = vel.read(&node, my.clone()).await;
                    let mut my_pos: Vec<[f64; 3]> = all_pos[my.clone()].to_vec();
                    for (off, i) in my.clone().enumerate() {
                        let (acc, _cnt) = force_on(i, &tree, &all_pos, &all_mass);
                        for k in 0..3 {
                            my_vel[off][k] += acc[k] * dt;
                            my_pos[off][k] += my_vel[off][k] * dt;
                        }
                    }
                    let units = my.len() as f64 * 28.0 * (n as f64).log2();
                    node.compute(us_f64(units * NS_PER_UNIT / 1e3)).await;
                    // Publish only after everyone finished reading the old
                    // positions (two-phase step, as in SPLASH-2).
                    node.barrier(0).await;
                    pos.write(&node, my.start, &my_pos).await;
                    vel.write(&node, my.start, &my_vel).await;
                    node.barrier(0).await;
                }
                // Verify owned bodies.
                let got = pos.read(&node, my.clone()).await;
                for (off, i) in my.clone().enumerate() {
                    for k in 0..3 {
                        assert!(
                            (got[off][k] - expected[i][k]).abs() < 1e-9,
                            "Barnes mismatch body {i} dim {k}"
                        );
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_force_approximates_direct_sum() {
        let n = 200;
        let pos: Vec<[f64; 3]> = (0..n).map(Barnes::init_pos).collect();
        let mass: Vec<f64> = (0..n).map(|i| 0.5 + unit_f64(0xBAA5, i as u64)).collect();
        let idx: Vec<usize> = (0..n).collect();
        let tree = build_octree(&idx, &pos, &mass, [-2.0; 3], 8.0);
        for i in [0usize, 57, 199] {
            let (bh, _) = force_on(i, &tree, &pos, &mass);
            let mut direct = [0.0; 3];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = [
                    pos[j][0] - pos[i][0],
                    pos[j][1] - pos[i][1],
                    pos[j][2] - pos[i][2],
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                let inv = mass[j] / (r2 * r2.sqrt());
                for k in 0..3 {
                    direct[k] += d[k] * inv;
                }
            }
            let mag = (direct[0] * direct[0] + direct[1] * direct[1] + direct[2] * direct[2])
                .sqrt()
                .max(1e-12);
            for k in 0..3 {
                assert!(
                    (bh[k] - direct[k]).abs() / mag < 0.1,
                    "θ-approximation too far off: body {i} dim {k}: {} vs {}",
                    bh[k],
                    direct[k]
                );
            }
        }
    }

    #[test]
    fn calibration_matches_table1() {
        let ms = Barnes::paper().modeled_seq_ns() / 1e6;
        assert!((ms - 2_877_713.0).abs() < 1.0, "modeled {ms} ms");
    }

    #[test]
    fn parallel_barnes_verifies_on_four_nodes() {
        let sim = netsim::Sim::new(1);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Barnes {
            bodies: 256,
            steps: 2,
        };
        let elapsed = app.run(&dsm);
        assert!(elapsed > 0);
    }
}
