//! Radix — the SPLASH-2 integer radix sort.
//!
//! Iterative least-significant-digit radix sort with radix 256 over 32-bit
//! keys (4 passes). Each pass: local histogram → shared histogram exchange →
//! global prefix → permutation into the destination array. The permutation
//! scatters each node's keys across the whole destination, which is the
//! paper's poster child for "poor spatial locality generating a high amount
//! of traffic and false sharing".

use crate::common::{chunk_range, mix64};
use crate::workload::Workload;
use dsm::{DsmCluster, DsmNode, SharedArray};
use netsim::time::us_f64;
use std::rc::Rc;

/// Digit width (bits) and bucket count.
const DIGIT_BITS: u32 = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;
const PASSES: u32 = 32 / DIGIT_BITS;

/// Cost-model calibration: ns per key-touch (each key is touched twice per
/// pass: histogram + permute), set so the paper's 32M-key instance models
/// to Table 1's 4179 ms sequential time.
pub const NS_PER_UNIT: f64 = 4_179e6 / ((32u64 << 20) as f64 * PASSES as f64 * 2.0);

/// Radix problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Radix {
    /// Number of 32-bit keys.
    pub keys: usize,
}

impl Radix {
    /// The paper's instance: 32M integers.
    pub fn paper() -> Self {
        Self { keys: 32 << 20 }
    }

    /// Key-touch units.
    pub fn units(&self) -> f64 {
        self.keys as f64 * PASSES as f64 * 2.0
    }

    fn input(i: usize) -> u32 {
        mix64(0xAD1C ^ i as u64) as u32
    }
}

/// One pass of the parallel sort. `src`/`dst` swap between passes.
async fn radix_pass(
    node: &DsmNode,
    src: SharedArray<u32>,
    dst: SharedArray<u32>,
    hist: SharedArray<u64>,
    shift: u32,
    n: usize,
) {
    let p = node.nodes();
    let me = node.id();
    let my = chunk_range(n, me, p);
    // 1. Local histogram over my slice.
    let keys = src.read(node, my.clone()).await;
    let mut counts = vec![0u64; BUCKETS];
    for &k in &keys {
        counts[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
    }
    node.compute(us_f64(keys.len() as f64 * NS_PER_UNIT / 1e3))
        .await;
    // 2. Publish my histogram; wait for everyone's.
    hist.write(node, me * BUCKETS, &counts).await;
    node.barrier(0).await;
    // 3. Global prefix: bucket base offsets + my rank within each bucket.
    let all = hist.read(node, 0..p * BUCKETS).await;
    let mut bucket_total = vec![0u64; BUCKETS];
    let mut my_rank = vec![0u64; BUCKETS];
    for b in 0..BUCKETS {
        for j in 0..p {
            let c = all[j * BUCKETS + b];
            if j < me {
                my_rank[b] += c;
            }
            bucket_total[b] += c;
        }
    }
    let mut bucket_base = vec![0u64; BUCKETS];
    let mut acc = 0u64;
    for b in 0..BUCKETS {
        bucket_base[b] = acc;
        acc += bucket_total[b];
    }
    // 4. Permute: my keys grouped per bucket land as contiguous runs at
    //    base + my rank (stable within a node).
    let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); BUCKETS];
    for &k in &keys {
        grouped[((k >> shift) as usize) & (BUCKETS - 1)].push(k);
    }
    // Prefetch all destination pages in one burst (write faults would
    // otherwise cost one round trip per bucket run).
    let wanted: Vec<(u64, usize)> = grouped
        .iter()
        .enumerate()
        .filter(|(_, run)| !run.is_empty())
        .map(|(b, run)| {
            let at = (bucket_base[b] + my_rank[b]) as usize;
            (dst.addr(at), run.len() * 4)
        })
        .collect();
    node.fetch_ranges(&wanted).await;
    for (b, run) in grouped.into_iter().enumerate() {
        if run.is_empty() {
            continue;
        }
        let at = (bucket_base[b] + my_rank[b]) as usize;
        dst.write(node, at, &run).await;
    }
    node.compute(us_f64(keys.len() as f64 * NS_PER_UNIT / 1e3))
        .await;
    node.barrier(0).await;
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "Radix"
    }

    fn problem(&self) -> String {
        format!("{} integers", self.keys)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * NS_PER_UNIT
    }

    fn footprint_bytes(&self) -> u64 {
        // Two key arrays + histograms.
        2 * self.keys as u64 * 4 + (BUCKETS as u64) * 8 * 16
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        let n = self.keys;
        let a = dsm.alloc_array::<u32>(n);
        let b = dsm.alloc_array::<u32>(n);
        let hist = dsm.alloc_array::<u64>(dsm.len() * BUCKETS);
        let input: Vec<u32> = (0..n).map(Radix::input).collect();
        let mut sorted = input.clone();
        sorted.sort_unstable();
        let sorted = Rc::new(sorted);
        let input = Rc::new(input);
        dsm.run_spmd(move |node| {
            let input = input.clone();
            let sorted = sorted.clone();
            async move {
                let p = node.nodes();
                let my = chunk_range(n, node.id(), p);
                // Init my slice of the source array (local home).
                a.write(&node, my.start, &input[my.clone()]).await;
                node.barrier(0).await;
                for pass in 0..PASSES {
                    let (src, dst) = if pass % 2 == 0 { (a, b) } else { (b, a) };
                    radix_pass(&node, src, dst, hist, pass * DIGIT_BITS, n).await;
                }
                // PASSES is even → result is back in `a`.
                let mine = a.read(&node, my.clone()).await;
                assert_eq!(
                    mine[..],
                    sorted[my.clone()],
                    "radix result mismatch on node {}",
                    node.id()
                );
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table1() {
        let ms = Radix::paper().modeled_seq_ns() / 1e6;
        assert!((ms - 4179.0).abs() < 1.0, "modeled {ms} ms");
    }

    #[test]
    fn sorts_on_four_nodes() {
        let sim = netsim::Sim::new(4);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Radix { keys: 4096 };
        let elapsed = app.run(&dsm);
        assert!(elapsed > 0);
        // The permutation scatters writes into remote pages: diffs happen.
        let stats = dsm.dsm_stats();
        assert!(stats.diff_ops > 0, "radix must flush diffs: {stats:?}");
    }

    #[test]
    fn sorts_on_one_node() {
        let sim = netsim::Sim::new(4);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(1));
        let app = Radix { keys: 2048 };
        app.run(&dsm);
    }
}
