//! Raytrace — a sphere-scene ray tracer (the paper's "balls" scene).
//!
//! The scene (spheres + lights) is read-only shared data; the image is a
//! shared framebuffer. Work is distributed dynamically: nodes grab row-band
//! tiles from a lock-protected shared counter (SPLASH-2 raytrace's task
//! queue), trace primary rays with one shadow test and one reflection
//! bounce, and write their tile's pixels. Compute per pixel dwarfs the
//! communication, so the paper sees near-linear speedups.

use crate::common::unit_f64;
use crate::workload::Workload;
use dsm::DsmCluster;
use netsim::time::us_f64;
use std::rc::Rc;

/// Rows per work tile.
const TILE_ROWS: usize = 8;
/// Lock id of the task-queue counter.
const QUEUE_LOCK: u32 = 17;

/// Cost-model calibration: ns per ray-sphere intersection test, set so the
/// paper's 1K×1K balls scene models to Table 1's 376096 ms sequential time.
/// Tests per pixel ≈ spheres × (primary + shadow + reflection) = 3·S.
pub const NS_PER_UNIT: f64 = {
    let pixels = 1024.0 * 1024.0;
    let spheres = 64.0;
    376_096e6 / (pixels * 3.0 * spheres)
};

/// Raytrace problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Raytrace {
    /// Image width and height.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Sphere count of the balls scene.
    pub spheres: usize,
}

impl Raytrace {
    /// The paper's instance: balls scene at 1K×1K.
    pub fn paper() -> Self {
        Self {
            width: 1024,
            height: 1024,
            spheres: 64,
        }
    }

    /// Ray-sphere test units.
    pub fn units(&self) -> f64 {
        (self.width * self.height) as f64 * 3.0 * self.spheres as f64
    }
}

/// One sphere: center, radius, RGB color packed as floats.
#[derive(Debug, Clone, Copy)]
struct Sphere {
    c: [f64; 3],
    r: f64,
    color: [f64; 3],
}

fn balls_scene(n: usize) -> Vec<Sphere> {
    (0..n)
        .map(|i| {
            let u = |salt: u64| unit_f64(salt, i as u64);
            Sphere {
                c: [
                    4.0 * u(0x51) - 2.0,
                    4.0 * u(0x52) - 2.0,
                    3.0 + 4.0 * u(0x53),
                ],
                r: 0.15 + 0.35 * u(0x54),
                color: [u(0x55), u(0x56), u(0x57)],
            }
        })
        .collect()
}

/// Ray-sphere intersection: distance along the ray, if any.
fn hit(orig: [f64; 3], dir: [f64; 3], s: &Sphere) -> Option<f64> {
    let oc = [orig[0] - s.c[0], orig[1] - s.c[1], orig[2] - s.c[2]];
    let b = oc[0] * dir[0] + oc[1] * dir[1] + oc[2] * dir[2];
    let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - s.r * s.r;
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let t = -b - disc.sqrt();
    if t > 1e-6 {
        Some(t)
    } else {
        None
    }
}

/// Trace one primary ray; returns (packed RGB, ray-sphere tests).
fn trace(px: usize, py: usize, w: usize, h: usize, scene: &[Sphere]) -> (u32, u64) {
    let mut tests = 0u64;
    let dir0 = [
        (px as f64 + 0.5) / w as f64 - 0.5,
        (py as f64 + 0.5) / h as f64 - 0.5,
        1.0,
    ];
    let norm = (dir0[0] * dir0[0] + dir0[1] * dir0[1] + 1.0).sqrt();
    let mut orig = [0.0, 0.0, 0.0];
    let mut dir = [dir0[0] / norm, dir0[1] / norm, dir0[2] / norm];
    let light = [5.0f64, 5.0, -2.0];
    let mut color = [0.05f64, 0.05, 0.08]; // background
    let mut weight = 1.0f64;
    for _bounce in 0..2 {
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in scene.iter().enumerate() {
            tests += 1;
            if let Some(t) = hit(orig, dir, s) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let Some((t, si)) = best else { break };
        let s = &scene[si];
        let p = [orig[0] + t * dir[0], orig[1] + t * dir[1], orig[2] + t * dir[2]];
        let mut n = [(p[0] - s.c[0]) / s.r, (p[1] - s.c[1]) / s.r, (p[2] - s.c[2]) / s.r];
        let nn = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
        for k in n.iter_mut() {
            *k /= nn;
        }
        // Shadow test toward the light.
        let mut l = [light[0] - p[0], light[1] - p[1], light[2] - p[2]];
        let ln = (l[0] * l[0] + l[1] * l[1] + l[2] * l[2]).sqrt();
        for k in l.iter_mut() {
            *k /= ln;
        }
        let mut shadowed = false;
        for sh in scene {
            tests += 1;
            if hit(p, l, sh).is_some() {
                shadowed = true;
                break;
            }
        }
        let diffuse = if shadowed {
            0.1
        } else {
            (n[0] * l[0] + n[1] * l[1] + n[2] * l[2]).max(0.0)
        };
        for (k, ch) in color.iter_mut().enumerate() {
            *ch += weight * s.color[k] * (0.15 + 0.85 * diffuse);
        }
        // Reflection bounce.
        let d_dot_n = dir[0] * n[0] + dir[1] * n[1] + dir[2] * n[2];
        dir = [
            dir[0] - 2.0 * d_dot_n * n[0],
            dir[1] - 2.0 * d_dot_n * n[1],
            dir[2] - 2.0 * d_dot_n * n[2],
        ];
        orig = p;
        weight *= 0.3;
    }
    let to8 = |v: f64| (v.clamp(0.0, 1.0) * 255.0) as u32;
    (
        (to8(color[0]) << 16) | (to8(color[1]) << 8) | to8(color[2]),
        tests,
    )
}

/// Host oracle: render the full image.
fn render_host(w: usize, h: usize, scene: &[Sphere]) -> Vec<u32> {
    let mut img = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            img[y * w + x] = trace(x, y, w, h, scene).0;
        }
    }
    img
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "Raytrace"
    }

    fn problem(&self) -> String {
        format!("balls scene {}x{}", self.width, self.height)
    }

    fn modeled_seq_ns(&self) -> f64 {
        self.units() * NS_PER_UNIT
    }

    fn footprint_bytes(&self) -> u64 {
        (self.width * self.height) as u64 * 4 + self.spheres as u64 * 56
    }

    fn run(&self, dsm: &DsmCluster) -> u64 {
        let (w, h) = (self.width, self.height);
        let scene = balls_scene(self.spheres);
        let expected = Rc::new(render_host(w, h, &scene));
        let scene = Rc::new(scene);
        let image = dsm.alloc_array::<u32>(w * h);
        let queue = dsm.alloc_array::<u64>(1);
        let tiles = h.div_ceil(TILE_ROWS);
        dsm.run_spmd(move |node| {
            let scene = scene.clone();
            let expected = expected.clone();
            async move {
                if node.id() == 0 {
                    queue.set(&node, 0, 0).await;
                }
                node.barrier(0).await;
                let mut rendered: Vec<usize> = Vec::new();
                loop {
                    // Grab the next tile from the lock-protected counter.
                    node.lock(QUEUE_LOCK).await;
                    let idx = queue.get(&node, 0).await;
                    queue.set(&node, 0, idx + 1).await;
                    node.unlock(QUEUE_LOCK).await;
                    let idx = idx as usize;
                    if idx >= tiles {
                        break;
                    }
                    rendered.push(idx);
                    let y0 = idx * TILE_ROWS;
                    let y1 = (y0 + TILE_ROWS).min(h);
                    for y in y0..y1 {
                        let mut row = vec![0u32; w];
                        for (x, px) in row.iter_mut().enumerate() {
                            let (c, _t) = trace(x, y, w, h, &scene);
                            *px = c;
                        }
                        image.write(&node, y * w, &row).await;
                    }
                    // Charge by the sequential model's per-pixel formula.
                    let units = ((y1 - y0) * w) as f64 * 3.0 * scene.len() as f64;
                    node.compute(us_f64(units * NS_PER_UNIT / 1e3)).await;
                }
                node.barrier(0).await;
                // Verify the tiles this node rendered.
                for idx in rendered {
                    let y0 = idx * TILE_ROWS;
                    let y1 = (y0 + TILE_ROWS).min(h);
                    let got = image.read(&node, y0 * w..y1 * w).await;
                    assert_eq!(
                        got[..],
                        expected[y0 * w..y1 * w],
                        "raytrace tile {idx} mismatch"
                    );
                }
                node.barrier(0).await;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rays_hit_spheres() {
        let s = Sphere {
            c: [0.0, 0.0, 5.0],
            r: 1.0,
            color: [1.0, 0.0, 0.0],
        };
        let t = hit([0.0, 0.0, 0.0], [0.0, 0.0, 1.0], &s).expect("ray through center hits");
        assert!((t - 4.0).abs() < 1e-9);
        assert!(hit([0.0, 0.0, 0.0], [0.0, 1.0, 0.0], &s).is_none());
    }

    #[test]
    fn image_is_deterministic_and_nontrivial() {
        let scene = balls_scene(8);
        let a = render_host(64, 64, &scene);
        let b = render_host(64, 64, &scene);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u32> = a.iter().copied().collect();
        assert!(distinct.len() > 10, "image must have structure");
    }

    #[test]
    fn calibration_matches_table1() {
        let ms = Raytrace::paper().modeled_seq_ns() / 1e6;
        assert!((ms - 376_096.0).abs() < 1.0, "modeled {ms} ms");
    }

    #[test]
    fn parallel_raytrace_verifies_with_dynamic_tiles() {
        let sim = netsim::Sim::new(6);
        let dsm = DsmCluster::build(&sim, multiedge::SystemConfig::one_link_1g(4));
        let app = Raytrace {
            width: 64,
            height: 64,
            spheres: 12,
        };
        let elapsed = app.run(&dsm);
        assert!(elapsed > 0);
        // Dynamic work distribution went through the lock.
        assert!(dsm.dsm_stats().lock_acquires >= (64 / TILE_ROWS) as u64);
    }
}
