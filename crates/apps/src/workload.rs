//! The workload abstraction and the experiment runner.
//!
//! Every SPLASH-2-style kernel implements [`Workload`]; the runner builds a
//! fresh DSM cluster for a [`SystemConfig`], executes the kernel SPMD,
//! verifies its result against a host-side sequential reference, and
//! collects the statistics the paper's application figures plot.

use dsm::DsmCluster;
use me_stats::Breakdown;
use multiedge::{ProtoStats, SystemConfig};
use netsim::{NetStats, Sim};

/// A runnable, verifiable application kernel.
pub trait Workload {
    /// Short name as used in Table 1 ("FFT", "Radix", …).
    fn name(&self) -> &'static str;

    /// Human-readable problem-size string ("2^20 complex values").
    fn problem(&self) -> String;

    /// Modeled *sequential* execution time in nanoseconds for this
    /// instance's parameters (the calibrated cost model; see
    /// `apps::table` for the calibration against Table 1).
    fn modeled_seq_ns(&self) -> f64;

    /// Shared-data footprint in bytes for this instance.
    fn footprint_bytes(&self) -> u64;

    /// Allocate shared state, run the kernel SPMD on `dsm`, verify the
    /// result (panicking on mismatch), and return the parallel execution
    /// time in virtual nanoseconds.
    fn run(&self, dsm: &DsmCluster) -> u64;
}

/// Everything measured in one application × configuration run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub name: &'static str,
    /// Configuration name ("1L-1G" etc.).
    pub config: String,
    /// Cluster size.
    pub nodes: usize,
    /// Parallel execution time (virtual ns).
    pub elapsed_ns: u64,
    /// Modeled sequential time at the same parameters (ns).
    pub seq_ns: f64,
    /// Average per-node execution-time breakdown.
    pub breakdown: Breakdown,
    /// Cluster-wide DSM statistics.
    pub dsm: dsm::DsmStats,
    /// Cluster-wide protocol statistics.
    pub proto: ProtoStats,
    /// Network counters.
    pub net: NetStats,
}

impl AppRun {
    /// Speedup over the modeled sequential execution.
    pub fn speedup(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.seq_ns / self.elapsed_ns as f64
    }

    /// Fraction of per-node time spent in the protocol (Figures 3c/5b).
    pub fn protocol_cpu_fraction(&self) -> f64 {
        self.breakdown.frac(self.breakdown.protocol_ns)
    }

    /// Additional traffic: extra frames (explicit acks + nacks +
    /// retransmissions) over data frames (Figures 3e/5e).
    pub fn extra_traffic_fraction(&self) -> f64 {
        self.proto.extra_frame_fraction()
    }
}

/// Run `w` on a fresh cluster built from `system`.
pub fn run_app(system: SystemConfig, w: &dyn Workload) -> AppRun {
    let nodes = system.nodes;
    let config = system.name.clone();
    let sim = Sim::new(system.seed);
    let dsm = DsmCluster::build(&sim, system);
    let elapsed_ns = w.run(&dsm);
    let breakdowns = dsm.breakdowns(elapsed_ns);
    AppRun {
        name: w.name(),
        config,
        nodes,
        elapsed_ns,
        seq_ns: w.modeled_seq_ns(),
        breakdown: Breakdown::average(&breakdowns),
        dsm: dsm.dsm_stats(),
        proto: dsm.proto_stats(),
        net: dsm.cluster.net.stats(),
    }
}

/// Run `w` across a set of cluster sizes (speedup curves, Figures 3a/4a).
pub fn speedup_curve(
    mk_system: impl Fn(usize) -> SystemConfig,
    w: &dyn Workload,
    node_counts: &[usize],
) -> Vec<AppRun> {
    node_counts
        .iter()
        .map(|&n| run_app(mk_system(n), w))
        .collect()
}
