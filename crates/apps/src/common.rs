//! Shared helpers for the application kernels.

/// Complex number as `[re, im]` (implements the DSM `Pod` trait via the
/// fixed-size-array blanket impl).
pub type Complex = [f64; 2];

/// Complex multiply.
pub fn cmul(a: Complex, b: Complex) -> Complex {
    [a[0] * b[0] - a[1] * b[1], a[0] * b[1] + a[1] * b[0]]
}

/// Complex add.
pub fn cadd(a: Complex, b: Complex) -> Complex {
    [a[0] + b[0], a[1] + b[1]]
}

/// Complex subtract.
pub fn csub(a: Complex, b: Complex) -> Complex {
    [a[0] - b[0], a[1] - b[1]]
}

/// `e^{i·theta}`.
pub fn cexp(theta: f64) -> Complex {
    [theta.cos(), theta.sin()]
}

/// Deterministic 64-bit mix (splitmix64): the apps use it to generate
/// reproducible inputs from indices without carrying RNG state.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic f64 in `[0, 1)` from an index.
pub fn unit_f64(seed: u64, idx: u64) -> f64 {
    (mix64(seed ^ mix64(idx)) >> 11) as f64 / (1u64 << 53) as f64
}

/// The contiguous slice of `0..total` owned by `node` of `nodes`
/// (remainder spread over the first ranks).
pub fn chunk_range(total: usize, node: usize, nodes: usize) -> std::ops::Range<usize> {
    let base = total / nodes;
    let rem = total % nodes;
    let start = node * base + node.min(rem);
    let len = base + usize::from(node < rem);
    start..start + len
}

/// Maximum absolute difference between two f64 slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_ops() {
        let i = [0.0, 1.0];
        assert_eq!(cmul(i, i), [-1.0, 0.0]);
        assert_eq!(cadd([1.0, 2.0], [3.0, 4.0]), [4.0, 6.0]);
        assert_eq!(csub([1.0, 2.0], [3.0, 4.0]), [-2.0, -2.0]);
        let e = cexp(std::f64::consts::PI);
        assert!((e[0] + 1.0).abs() < 1e-12 && e[1].abs() < 1e-12);
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        let u = unit_f64(1, 2);
        assert!((0.0..1.0).contains(&u));
        assert_eq!(unit_f64(1, 2), u);
    }

    #[test]
    fn chunks_partition_everything() {
        for total in [0usize, 1, 7, 16, 100] {
            for nodes in [1usize, 2, 3, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..nodes {
                    let r = chunk_range(total, i, nodes);
                    assert_eq!(r.start, prev_end, "contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for i in 0..5 {
            let r = chunk_range(17, i, 5);
            assert!(r.len() == 3 || r.len() == 4);
        }
    }
}
