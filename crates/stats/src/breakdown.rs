//! Execution-time breakdowns (the paper's Figures 3b, 4b, 5a, 6a).
//!
//! The application figures split per-node execution time into compute, data
//! wait (stalls on remote page fetches), synchronization (locks + barriers)
//! and protocol overhead. [`Breakdown`] carries those four buckets in
//! nanoseconds plus the total elapsed time.

/// Per-node (or averaged) execution-time breakdown, all in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Modeled application computation.
    pub compute_ns: u64,
    /// Time blocked waiting for remote data (page fetches, remote reads).
    pub data_wait_ns: u64,
    /// Time blocked in locks and barriers.
    pub sync_ns: u64,
    /// Protocol CPU time attributed to this node (the paper's "CPU time
    /// spent in the MultiEdge protocol").
    pub protocol_ns: u64,
    /// Wall-clock (virtual) execution time of the parallel section.
    pub elapsed_ns: u64,
}

impl Breakdown {
    /// Sum of the explained buckets (compute + waits). May be below
    /// `elapsed_ns` (idle/imbalance) — the remainder is reported as "other".
    pub fn explained_ns(&self) -> u64 {
        self.compute_ns + self.data_wait_ns + self.sync_ns
    }

    /// Unattributed time (load imbalance, scheduling).
    pub fn other_ns(&self) -> u64 {
        self.elapsed_ns.saturating_sub(self.explained_ns())
    }

    /// Fraction helpers (of elapsed time).
    pub fn frac(&self, ns: u64) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            ns as f64 / self.elapsed_ns as f64
        }
    }

    /// Average several per-node breakdowns into one.
    pub fn average(items: &[Breakdown]) -> Breakdown {
        if items.is_empty() {
            return Breakdown::default();
        }
        let n = items.len() as u64;
        Breakdown {
            compute_ns: items.iter().map(|b| b.compute_ns).sum::<u64>() / n,
            data_wait_ns: items.iter().map(|b| b.data_wait_ns).sum::<u64>() / n,
            sync_ns: items.iter().map(|b| b.sync_ns).sum::<u64>() / n,
            protocol_ns: items.iter().map(|b| b.protocol_ns).sum::<u64>() / n,
            elapsed_ns: items.iter().map(|b| b.elapsed_ns).sum::<u64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_other() {
        let b = Breakdown {
            compute_ns: 60,
            data_wait_ns: 20,
            sync_ns: 10,
            protocol_ns: 5,
            elapsed_ns: 100,
        };
        assert_eq!(b.explained_ns(), 90);
        assert_eq!(b.other_ns(), 10);
        assert!((b.frac(b.compute_ns) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn average_of_two() {
        let a = Breakdown {
            compute_ns: 100,
            data_wait_ns: 0,
            sync_ns: 0,
            protocol_ns: 0,
            elapsed_ns: 100,
        };
        let b = Breakdown {
            compute_ns: 50,
            data_wait_ns: 30,
            sync_ns: 20,
            protocol_ns: 10,
            elapsed_ns: 100,
        };
        let avg = Breakdown::average(&[a, b]);
        assert_eq!(avg.compute_ns, 75);
        assert_eq!(avg.data_wait_ns, 15);
        assert_eq!(avg.elapsed_ns, 100);
    }

    #[test]
    fn empty_average_is_default() {
        assert_eq!(Breakdown::average(&[]), Breakdown::default());
    }

    #[test]
    fn zero_elapsed_fraction_is_zero() {
        assert_eq!(Breakdown::default().frac(10), 0.0);
    }
}
