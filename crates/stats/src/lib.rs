//! `me-stats` — report formatting for the MultiEdge experiment harnesses.
//!
//! Every figure/table harness produces rows through [`Table`] so the output
//! of `cargo bench` is uniform, greppable and easy to diff against the
//! paper's numbers (see `EXPERIMENTS.md`).

pub mod breakdown;
pub mod table;

pub use breakdown::Breakdown;
pub use table::Table;
