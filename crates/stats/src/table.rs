//! Aligned text tables (and CSV emission) for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are any displayable values).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", c, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with a sensible number of digits for tables.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a fraction as a percentage string.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a byte size compactly (16, 1K, 64K, 1M).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["size", "MB/s"]);
        t.row(vec!["16".into(), "1.5".into()]);
        t.row(vec!["1048576".into(), "118".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("size"));
        let lines: Vec<_> = s.lines().collect();
        // Header, separator, two rows (plus title).
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows aligned");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_size(16), "16");
        assert_eq!(fmt_size(1024), "1K");
        assert_eq!(fmt_size(1 << 20), "1M");
        assert_eq!(fmt_pct(0.123), "12.3%");
        assert_eq!(fmt_f(118.4), "118");
        assert_eq!(fmt_f(2.25), "2.2");
        assert_eq!(fmt_f(0.056), "0.056");
    }
}
