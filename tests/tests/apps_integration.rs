//! Every Table 1 application, verified on every paper configuration.
//!
//! Uses tiny problem instances; each `Workload::run` panics if the parallel
//! result diverges from the host-side sequential oracle, so these tests
//! prove end-to-end correctness of apps → DSM → MultiEdge → netsim for all
//! four system setups.

use apps::table::tiny_workloads;
use apps::workload::run_app;
use multiedge::SystemConfig;

fn run_all(cfg_for: impl Fn() -> SystemConfig) {
    for w in tiny_workloads() {
        let run = run_app(cfg_for(), w.as_ref());
        assert!(run.elapsed_ns > 0, "{} produced no work", w.name());
    }
}

#[test]
fn all_apps_verify_on_1l_1g() {
    run_all(|| SystemConfig::one_link_1g(4));
}

#[test]
fn all_apps_verify_on_2l_1g_ordered() {
    run_all(|| SystemConfig::two_link_1g(4));
}

#[test]
fn all_apps_verify_on_2lu_1g_unordered() {
    run_all(|| SystemConfig::two_link_1g_unordered(4));
}

#[test]
fn all_apps_verify_on_1l_10g() {
    run_all(|| SystemConfig::one_link_10g(4));
}

#[test]
fn all_apps_verify_on_sixteen_nodes() {
    run_all(|| SystemConfig::one_link_1g(16));
}

#[test]
fn all_apps_verify_under_transient_loss() {
    run_all(|| {
        let mut c = SystemConfig::two_link_1g_unordered(4);
        c.fault = netsim::FaultModel {
            loss_rate: 0.005,
            corrupt_rate: 0.001,
        };
        c
    });
}

#[test]
fn ordered_vs_unordered_changes_reordering_not_results() {
    // The 2L vs 2Lu comparison of Figures 5/6: same results (verified
    // inside run), strictly-ordered mode buffers fenced fragments.
    let w = apps::fft::Fft { m: 10 };
    let ordered = run_app(SystemConfig::two_link_1g(4), &w);
    let relaxed = run_app(SystemConfig::two_link_1g_unordered(4), &w);
    assert!(ordered.elapsed_ns > 0 && relaxed.elapsed_ns > 0);
    // Both run on two rails: both observe out-of-order arrivals.
    assert!(ordered.proto.ooo_arrivals > 0);
    assert!(relaxed.proto.ooo_arrivals > 0);
}
