//! Property-based soundness of critical-path latency attribution: for
//! arbitrary mixed read/write workloads — random sizes, fence flags, rail
//! counts, and loss rates — every completed op's exclusive phase durations
//! must sum *exactly* (to the nanosecond) to its measured issue→completion
//! latency, and the span population must reconcile with the tracer's
//! independently-stamped op-latency histograms.

use integration_tests::rig;
use me_trace::{analyze, PhaseBreakdown};
use multiedge::{OpFlags, SystemConfig};
use netsim::FaultModel;
use proptest::prelude::*;

const CAP: usize = 1 << 14;

/// One randomized operation: a write or a read with a fence choice.
#[derive(Debug, Clone)]
struct MixedOp {
    read: bool,
    bucket: u8,
    len: usize,
    fwd: bool,
    bwd: bool,
    notify: bool,
}

fn arb_op() -> impl Strategy<Value = MixedOp> {
    (
        any::<bool>(),
        0u8..6,
        1usize..24_000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(read, bucket, len, fwd, bwd, notify)| MixedOp {
            read,
            bucket,
            len,
            fwd,
            bwd,
            notify,
        })
}

fn run_case(ops: Vec<MixedOp>, rails: usize, loss: f64, seed: u64) {
    let mut cfg = if rails == 2 {
        SystemConfig::two_link_1g_unordered(2)
    } else {
        SystemConfig::one_link_1g(2)
    };
    cfg.fault = FaultModel {
        loss_rate: loss,
        corrupt_rate: loss / 4.0,
    };
    cfg.seed = seed;
    cfg = cfg.with_spans(CAP).with_tracing(CAP);
    let (sim, _cl, eps, conns) = rig(cfg);
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    let n_ops = ops.len() as u64;
    let done = sim.spawn("mixed-writer", async move {
        let mut handles = Vec::new();
        for op in ops {
            let flags = OpFlags {
                fence_backward: op.bwd,
                fence_forward: op.fwd,
                notify: op.notify && !op.read,
            };
            let addr = (op.bucket as u64) << 20;
            let h = if op.read {
                ep.read(c, 0x40_0000 + addr, addr, op.len, flags).await
            } else {
                ep.write_bytes(c, addr, vec![0xA5; op.len], flags).await
            };
            handles.push(h);
        }
        for h in &handles {
            h.wait().await;
        }
        true
    });
    sim.run().expect_quiescent();
    assert_eq!(done.try_take(), Some(true), "workload must complete");

    let snap = eps[0].span_recorder().snapshot().expect("spans enabled");
    assert_eq!(snap.overwritten, 0, "span ring must hold the whole run");
    assert_eq!(snap.active, 0, "all spans must have completed");
    assert_eq!(snap.completed_total, n_ops, "one span per op");

    // The core soundness property: exclusive phases telescope exactly.
    let mut span_latency_sum = 0u64;
    for s in &snap.spans {
        let b = PhaseBreakdown::from_span(s);
        assert_eq!(
            b.phases.iter().sum::<u64>(),
            b.latency_ns,
            "phases must sum to latency for op {:?} (rails={rails} loss={loss})",
            s.key,
        );
        assert_eq!(b.latency_ns, s.complete - s.created);
        span_latency_sum += b.latency_ns;
    }

    // The rollup conserves every nanosecond it was fed.
    let att = analyze(&snap);
    assert_eq!(att.overall.ops, n_ops);
    assert_eq!(att.overall.latency_total_ns, span_latency_sum);
    assert_eq!(att.overall.phase_sum_ns(), att.overall.latency_total_ns);

    // Reconcile against the tracer, which stamps op latency on a separate
    // code path (the op handle) — same ops, same nanoseconds.
    let trace = eps[0].tracer().snapshot().expect("tracing enabled");
    let hist_count: u64 = trace.op_latency.values().map(|h| h.count()).sum();
    let hist_sum: u64 = trace.op_latency.values().map(|h| h.sum()).sum();
    assert_eq!(hist_count, n_ops, "tracer saw every op");
    assert_eq!(hist_sum, span_latency_sum, "span and tracer latencies agree");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Clean single link: attribution is exact for any op mix.
    #[test]
    fn attribution_exact_on_clean_link(
        ops in proptest::collection::vec(arb_op(), 1..20),
        seed in 0u64..1000,
    ) {
        run_case(ops, 1, 0.0, seed);
    }

    /// Two unordered rails: reordering and striping never break the
    /// telescoping.
    #[test]
    fn attribution_exact_on_two_rails(
        ops in proptest::collection::vec(arb_op(), 1..20),
        seed in 0u64..1000,
    ) {
        run_case(ops, 2, 0.0, seed);
    }

    /// Loss and corruption: retransmit repair lands in its own phase and
    /// the sums still telescope exactly.
    #[test]
    fn attribution_exact_under_loss(
        ops in proptest::collection::vec(arb_op(), 1..12),
        loss in 0.0f64..0.08,
        seed in 0u64..1000,
    ) {
        run_case(ops, 2, loss, seed);
    }
}
