//! Property-based tests of the sharded runtime's partitioner.
//!
//! The partition is the foundation of the determinism contract: every node
//! and switch must be owned by exactly one shard, ownership must be
//! balanced, and the lookahead window must never exceed the propagation
//! delay of any cross-shard link. Degenerate requests must fail with a
//! typed [`PartitionError`] — immediately, never by hanging a run.

use netsim::time::{ns, us_f64};
use netsim::{ClusterSpec, PartitionError, ShardPlan};
use proptest::prelude::*;

/// A random spec plus a valid shard count for it (1..=min(nodes, 16)),
/// derived rather than filtered — the vendored proptest shim has no
/// `prop_assume`.
fn arb_case() -> impl Strategy<Value = (ClusterSpec, usize)> {
    (1usize..300, 1usize..17, 0usize..1024).prop_map(|(nodes, rails, pick)| {
        let shards = 1 + pick % nodes.min(16);
        (ClusterSpec::gbe_1(nodes, rails), shards)
    })
}

proptest! {
    /// Every node is assigned to exactly one shard, every shard's
    /// `local_nodes` agrees with `node_shard`, and the union over shards is
    /// exactly `0..nodes` with no duplicates.
    #[test]
    fn every_node_owned_exactly_once((spec, shards) in arb_case()) {
        let plan = ShardPlan::partition(&spec, shards).unwrap();
        let mut seen = vec![0u32; spec.nodes];
        for s in 0..shards {
            for n in plan.local_nodes(s) {
                prop_assert_eq!(plan.node_shard(n), s);
                seen[n] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Every switch is owned by exactly one shard (round-robin by rail).
    #[test]
    fn every_switch_owned_exactly_once((spec, shards) in arb_case()) {
        let plan = ShardPlan::partition(&spec, shards).unwrap();
        for rail in 0..spec.rails {
            let owner = plan.switch_shard(rail);
            prop_assert!(owner < shards);
            // Exactly one shard claims it: ownership is a function of the
            // rail, so uniqueness is "every other shard disagrees".
            for s in (0..shards).filter(|&s| s != owner) {
                prop_assert_ne!(plan.switch_shard(rail), s);
            }
        }
    }

    /// Node blocks are contiguous and balanced: shard sizes differ by at
    /// most one, and a shard's nodes form one ascending run.
    #[test]
    fn node_blocks_are_contiguous_and_balanced((spec, shards) in arb_case()) {
        let plan = ShardPlan::partition(&spec, shards).unwrap();
        let sizes: Vec<usize> = (0..shards).map(|s| plan.local_nodes(s).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(*min >= 1, "some shard owns nothing: {sizes:?}");
        prop_assert!(max - min <= 1, "unbalanced: {sizes:?}");
        for s in 0..shards {
            let nodes = plan.local_nodes(s);
            for w in nodes.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1, "non-contiguous block: {:?}", nodes);
            }
        }
    }

    /// The lookahead window never exceeds any cross-shard link's
    /// propagation delay — the correctness bound of conservative
    /// synchronization. (Links are homogeneous today; the property pins
    /// the invariant for any future heterogeneous spec.)
    #[test]
    fn lookahead_bounded_by_cross_shard_latency((spec, shards) in arb_case()) {
        let plan = ShardPlan::partition(&spec, shards).unwrap();
        prop_assert!(plan.lookahead() > netsim::Dur::ZERO);
        for node in 0..spec.nodes {
            for rail in 0..spec.rails {
                if plan.node_shard(node) != plan.switch_shard(rail) {
                    prop_assert!(
                        spec.link.latency >= plan.lookahead(),
                        "cross-shard link ({node},{rail}) has latency below lookahead"
                    );
                }
            }
        }
    }

    /// Degenerate requests are typed errors, produced immediately.
    #[test]
    fn degenerate_requests_fail_fast_with_typed_errors(
        nodes in 0usize..64,
        rails in 1usize..9,
        shards in 0usize..80,
    ) {
        let mut spec = ClusterSpec::gbe_1(nodes.max(1), rails);
        spec.nodes = nodes;
        match ShardPlan::partition(&spec, shards) {
            Ok(plan) => {
                prop_assert!(shards >= 1 && nodes >= 1 && shards <= nodes);
                prop_assert_eq!(plan.shards(), shards);
            }
            Err(PartitionError::ZeroShards) => prop_assert_eq!(shards, 0),
            Err(PartitionError::NoNodes) => {
                prop_assert!(nodes == 0 && shards > 0);
            }
            Err(PartitionError::TooManyShards { shards: s, nodes: n }) => {
                prop_assert_eq!((s, n), (shards, nodes));
                prop_assert!(shards > nodes);
            }
            Err(PartitionError::ZeroLookahead) => {
                prop_assert!(false, "gbe_1 has nonzero latency");
            }
        }
    }
}

/// Zero link latency is rejected up front — the one degenerate case not
/// reachable through `gbe_1`.
#[test]
fn zero_latency_is_rejected() {
    let mut spec = ClusterSpec::gbe_1(8, 2);
    spec.link.latency = ns(0);
    assert!(matches!(
        ShardPlan::partition(&spec, 2),
        Err(PartitionError::ZeroLookahead)
    ));
    spec.link.latency = us_f64(2.0);
    assert!(ShardPlan::partition(&spec, 2).is_ok());
}
