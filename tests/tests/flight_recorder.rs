//! End-to-end flight recorder: a scripted rail outage on a live transfer
//! must trigger a post-mortem dump, write the configured artifact file, and
//! produce a document that round-trips through the JSON parser with a
//! non-empty event timeline and a self-consistent attribution section.

use integration_tests::{payload, rig};
use me_trace::{FlightConfig, Json};
use multiedge::{OpFlags, SystemConfig};
use netsim::time::ms;
use netsim::FaultPlan;

/// A unique-per-test scratch dir under the target directory.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn rail_outage_triggers_post_mortem_dump_artifact() {
    let dir = scratch("fr_rail_outage");
    let fc = FlightConfig {
        dump_dir: Some(dir.to_string_lossy().into_owned()),
        ..FlightConfig::default()
    };
    let cfg = SystemConfig::two_link_1g_unordered(2)
        .with_spans(1 << 12)
        .with_flight(fc);
    let (sim, cluster, eps, conns) = rig(cfg);
    // Kill rail 1 early enough that the stream is still running, repair it
    // later so the run drains to quiescence on both rails.
    let plan = FaultPlan::new().rail_down(ms(4), 1).rail_up(ms(80), 1);
    cluster.apply_fault_plan(&sim, &plan);
    let c = conns[0][1].unwrap();
    let ep = eps[0].clone();
    let data = payload(7, 48 * (64 << 10));
    let expect = data.clone();
    sim.spawn("outage-writer", async move {
        let mut handles = Vec::new();
        for (i, part) in data.chunks(64 << 10).enumerate() {
            let h = ep
                .write_bytes(c, (i as u64) * 0x1_0000, part.to_vec(), OpFlags::RELAXED)
                .await;
            handles.push(h);
        }
        for h in handles {
            h.wait().await;
        }
    });
    sim.run().expect_quiescent();
    assert_eq!(eps[1].mem_read(0, expect.len()), expect, "data must be exact");

    // The outage must have produced at least one triggered dump.
    let fr = eps[0].flight_recorder();
    assert!(fr.is_enabled());
    let dumps = fr.dumps();
    assert!(!dumps.is_empty(), "rail outage produced no post-mortem dump");
    let dump = &dumps[0];
    assert_eq!(dump.trigger, "rail_death");

    // The artifact file exists and parses back to the retained document.
    let path = dump.path.as_ref().expect("dump_dir set => file written");
    let text = std::fs::read_to_string(path).expect("dump artifact readable");
    let parsed = Json::parse(&text).expect("dump artifact is valid JSON");
    assert_eq!(parsed, dump.json);
    assert_eq!(
        parsed.get("kind").and_then(|k| k.as_str()),
        Some("multiedge_flight_dump")
    );
    assert_eq!(
        parsed.get("trigger").and_then(|t| t.as_str()),
        Some("rail_death")
    );

    // The timeline is non-empty and contains the rail_down event itself.
    let events = parsed.get("events").and_then(|e| e.items()).expect("events");
    assert!(!events.is_empty());
    assert!(
        events
            .iter()
            .any(|e| e.get("code").and_then(|c| c.as_str()) == Some("rail_down")),
        "timeline must include the rail death"
    );

    // The embedded attribution is self-consistent: phase sums equal the
    // latency total, for however many ops had completed at dump time.
    let overall = parsed
        .get("attribution")
        .and_then(|a| a.get("overall"))
        .expect("span source attached => attribution embedded");
    assert_eq!(
        overall.get("phase_sum_ns").and_then(|v| v.as_u64()),
        overall.get("latency_total_ns").and_then(|v| v.as_u64()),
    );
}

#[test]
fn quiet_run_takes_no_dumps() {
    let dir = scratch("fr_quiet");
    let fc = FlightConfig {
        dump_dir: Some(dir.to_string_lossy().into_owned()),
        ..FlightConfig::default()
    };
    let cfg = SystemConfig::one_link_1g(2).with_flight(fc);
    let (sim, _cl, eps, conns) = rig(cfg);
    let c = conns[0][1].unwrap();
    let ep = eps[0].clone();
    sim.spawn("quiet-writer", async move {
        let h = ep
            .write_bytes(c, 0, vec![3u8; 256 << 10], OpFlags::RELAXED)
            .await;
        h.wait().await;
    });
    sim.run().expect_quiescent();
    let fr = eps[0].flight_recorder();
    let (events, dumps, suppressed) = fr.counters();
    assert!(events > 0, "always-on recorder must have recorded the run");
    assert_eq!((dumps, suppressed), (0, 0), "clean run must not dump");
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "no artifacts on a clean run"
    );
}
