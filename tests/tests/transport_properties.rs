//! Property-based end-to-end transport tests: arbitrary operation
//! sequences under arbitrary fault rates must leave the receiver's memory
//! exactly equal to a reference model.

use integration_tests::rig;
use multiedge::{OpFlags, SystemConfig};
use netsim::FaultModel;
use proptest::prelude::*;

/// One randomized remote write: (address bucket, length, fill byte, flags).
#[derive(Debug, Clone)]
struct WriteOp {
    bucket: u8,
    len: usize,
    fill: u8,
    bwd: bool,
    fwd: bool,
}

fn arb_op() -> impl Strategy<Value = WriteOp> {
    (0u8..8, 1usize..20_000, any::<u8>(), any::<bool>(), any::<bool>()).prop_map(
        |(bucket, len, fill, bwd, fwd)| WriteOp {
            bucket,
            len,
            fill,
            bwd,
            fwd,
        },
    )
}

fn run_case(ops: Vec<WriteOp>, rails: usize, loss: f64, seed: u64) {
    let mut cfg = if rails == 2 {
        SystemConfig::two_link_1g_unordered(2)
    } else {
        SystemConfig::one_link_1g(2)
    };
    cfg.fault = FaultModel {
        loss_rate: loss,
        corrupt_rate: loss / 4.0,
    };
    cfg.seed = seed;
    let (sim, _cl, eps, conns) = rig(cfg);
    // Reference model: ops to the same bucket are ordered by fences only if
    // requested; to keep the model simple we give every op to the same
    // bucket a backward fence, making last-issued-wins deterministic.
    let mut reference: Vec<Vec<u8>> = vec![Vec::new(); 8];
    for op in &ops {
        let buf = vec![op.fill; op.len];
        let slot = &mut reference[op.bucket as usize];
        if slot.len() < op.len {
            slot.resize(op.len, 0);
        }
        slot[..op.len].copy_from_slice(&buf);
    }
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    let ops2 = ops.clone();
    let done = sim.spawn("writer", async move {
        let mut handles = Vec::new();
        for op in ops2 {
            let mut flags = OpFlags {
                fence_backward: true, // model simplicity: same-bucket order
                fence_forward: op.fwd,
                notify: false,
            };
            if op.bwd {
                flags.fence_backward = true;
            }
            let h = ep
                .write_bytes(
                    c,
                    (op.bucket as u64) << 20,
                    vec![op.fill; op.len],
                    flags,
                )
                .await;
            handles.push(h);
        }
        for h in &handles {
            h.wait().await;
        }
        true
    });
    sim.run().expect_quiescent();
    assert_eq!(done.try_take(), Some(true), "transfer must complete");
    for (b, want) in reference.iter().enumerate() {
        if want.is_empty() {
            continue;
        }
        let got = eps[1].mem_read((b as u64) << 20, want.len());
        assert_eq!(&got, want, "bucket {b} diverged (rails={rails} loss={loss})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clean single link: arbitrary op sequences land exactly.
    #[test]
    fn ops_exact_on_clean_link(ops in proptest::collection::vec(arb_op(), 1..25), seed in 0u64..1000) {
        run_case(ops, 1, 0.0, seed);
    }

    /// Two unordered rails: reordering never corrupts fenced streams.
    #[test]
    fn ops_exact_on_two_rails(ops in proptest::collection::vec(arb_op(), 1..25), seed in 0u64..1000) {
        run_case(ops, 2, 0.0, seed);
    }

    /// Lossy, corrupting network: reliability holds to the byte.
    #[test]
    fn ops_exact_under_loss(
        ops in proptest::collection::vec(arb_op(), 1..15),
        loss in 0.0f64..0.08,
        seed in 0u64..1000,
    ) {
        run_case(ops, 2, loss, seed);
    }
}
