//! End-to-end transport tests across crates: multi-node meshes, multi-link
//! reordering, fault injection, fences, reads.

use integration_tests::{payload, rig};
use me_trace::EventKind;
use multiedge::{OpFlags, SystemConfig};
use netsim::FaultModel;

#[test]
#[allow(clippy::needless_range_loop)] // i/j jointly index the mesh
fn all_to_all_transfers_on_eight_nodes() {
    let (sim, _cl, eps, conns) = rig(SystemConfig::one_link_1g(8));
    let n = eps.len();
    let size = 40_000usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let ep = eps[i].clone();
            let conn = conns[i][j].unwrap();
            let data = payload((i * 100 + j) as u64, size);
            sim.spawn(format!("w{i}-{j}"), async move {
                let h = ep
                    .write_bytes(conn, (i * n + 1) as u64 * 0x10_0000, data, OpFlags::RELAXED)
                    .await;
                h.wait().await;
            });
        }
    }
    sim.run().expect_quiescent();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let got = eps[j].mem_read((i * n + 1) as u64 * 0x10_0000, size);
            assert_eq!(got, payload((i * 100 + j) as u64, size), "{i}->{j}");
        }
    }
}

#[test]
fn four_rails_heavy_reordering_still_exact() {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.rails = 4;
    let (sim, _cl, eps, conns) = rig(cfg);
    let data = payload(5, 2_000_000);
    let d2 = data.clone();
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    sim.spawn("w", async move {
        let h = ep.write_bytes(c, 0, d2, OpFlags::RELAXED).await;
        h.wait().await;
    });
    sim.run().expect_quiescent();
    assert_eq!(eps[1].mem_read(0, data.len()), data);
    let frac = eps[1].stats().ooo_fraction();
    assert!(frac > 0.2, "4 rails must reorder substantially: {frac}");
}

#[test]
fn severe_loss_and_corruption_completes_exactly() {
    let mut cfg = SystemConfig::one_link_1g(2);
    cfg.fault = FaultModel {
        loss_rate: 0.20,
        corrupt_rate: 0.03,
    };
    cfg.seed = 1234;
    let (sim, _cl, eps, conns) = rig(cfg);
    let data = payload(9, 300_000);
    let d2 = data.clone();
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    let done = sim.spawn("w", async move {
        let h = ep.write_bytes(c, 0x400, d2, OpFlags::RELAXED).await;
        h.wait().await;
        true
    });
    sim.run().expect_quiescent();
    assert_eq!(done.try_take(), Some(true));
    assert_eq!(eps[1].mem_read(0x400, data.len()), data);
    assert!(eps[0].stats().retransmits() > 0);
}

#[test]
fn fences_order_across_interleaved_streams() {
    // Two interleaved op streams to the same peer on 2 unordered rails:
    // stream A writes a log + forward-fenced commit pointer; the reader
    // (via notification on the commit) must always see the log complete.
    let (sim, _cl, eps, conns) = rig(SystemConfig::two_link_1g_unordered(2));
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    sim.spawn("w", async move {
        for round in 0..20u64 {
            let log = payload(round, 30_000);
            // Each round gets its own log region; the commit pointer is
            // ordered behind it by the fences.
            let _ = ep
                .write_bytes(c, 0x10_0000 + round * 0x1_0000, log, OpFlags::RELAXED)
                .await;
            let _ = ep
                .write_bytes(
                    c,
                    0x90_0000,
                    round.to_le_bytes().to_vec(),
                    OpFlags::ORDERED_NOTIFY,
                )
                .await;
        }
    });
    let rd = eps[1].clone();
    let checked = sim.spawn("r", async move {
        for _ in 0..20 {
            let n = rd.next_notification().await.expect("commit");
            let round = u64::from_le_bytes(rd.mem_read(n.addr, 8).try_into().unwrap());
            // The backward fence on the commit guarantees the whole log of
            // `round` (and all earlier rounds) is already applied.
            let log = rd.mem_read(0x10_0000 + round * 0x1_0000, 30_000);
            assert_eq!(log, payload(round, 30_000), "torn log at round {round}");
        }
        true
    });
    sim.run().expect_quiescent();
    assert_eq!(checked.try_take(), Some(true));
}

#[test]
fn remote_reads_observe_prior_writes_under_load() {
    let (sim, _cl, eps, conns) = rig(SystemConfig::one_link_10g(2));
    let ep = eps[0].clone();
    let c = conns[0][1].unwrap();
    let ok = sim.spawn("rw", async move {
        for i in 0..10u64 {
            let data = payload(i, 50_000);
            let w = ep
                .write_bytes(c, 0x1000, data.clone(), OpFlags::RELAXED)
                .await;
            w.wait().await;
            let r = ep
                .read(c, 0x80_0000, 0x1000, 50_000, OpFlags::RELAXED.with_fence_backward())
                .await;
            r.wait().await;
            assert_eq!(ep.mem_read(0x80_0000, 50_000), data, "round {i}");
        }
        true
    });
    sim.run().expect_quiescent();
    assert_eq!(ok.try_take(), Some(true));
}

#[test]
fn sixteen_node_incast_congestion_recovers() {
    // All 15 peers blast node 0 simultaneously through a switch with small
    // output-port buffers: the port to node 0 overflows; NACK recovery must
    // still deliver everything.
    let mut cfg = SystemConfig::one_link_1g(16);
    cfg.link.queue_cap = 64; // force congestion drops at the output port
    let (sim, cl, eps, conns) = rig(cfg);
    let size = 120_000usize;
    for i in 1..16 {
        let ep = eps[i].clone();
        let c = conns[i][0].unwrap();
        sim.spawn(format!("blast-{i}"), async move {
            let h = ep
                .write_bytes(c, (i as u64) << 20, payload(i as u64, size), OpFlags::RELAXED)
                .await;
            h.wait().await;
        });
    }
    sim.run().expect_quiescent();
    for i in 1..16u64 {
        assert_eq!(eps[0].mem_read(i << 20, size), payload(i, size), "from {i}");
    }
    let drops = cl.net.stats().drops_overflow;
    assert!(drops > 0, "15:1 incast should overflow the output port");
}

#[test]
#[allow(clippy::needless_range_loop)] // i/j jointly index the mesh
fn per_conn_stats_sum_to_global() {
    // Exercise writes, reads and notifications on a 4-node mesh, then check
    // that every endpoint's per-connection rollups add up to its global
    // counters for all connection-attributable fields.
    let (sim, _cl, eps, conns) = rig(SystemConfig::two_link_1g_unordered(4));
    let n = eps.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let ep = eps[i].clone();
            let conn = conns[i][j].unwrap();
            let data = payload((i * 10 + j) as u64, 60_000);
            sim.spawn(format!("mix-{i}-{j}"), async move {
                let h = ep
                    .write_bytes(conn, (i as u64) << 24, data, OpFlags::RELAXED.with_notify())
                    .await;
                h.wait().await;
                let r = ep
                    .read(conn, 0x9000, (i as u64) << 24, 5_000, OpFlags::RELAXED)
                    .await;
                r.wait().await;
            });
        }
    }
    sim.run().expect_quiescent();
    for (idx, ep) in eps.iter().enumerate() {
        let global = ep.stats();
        let mut summed = multiedge::ProtoStats::default();
        for c in 0..ep.conn_count() {
            summed.merge(&ep.conn_stats(c));
        }
        let per_conn_view = |s: &multiedge::ProtoStats| {
            [
                s.ops_write,
                s.ops_read,
                s.bytes_written,
                s.bytes_read,
                s.data_frames_sent,
                s.data_bytes_sent,
                s.read_req_frames_sent,
                s.explicit_acks_sent,
                s.nacks_sent,
                s.retransmits_nack,
                s.retransmits_rto,
                s.data_frames_recv,
                s.ctrl_frames_recv,
                s.dup_frames_recv,
                s.ooo_arrivals,
                s.notifications,
            ]
        };
        assert_eq!(
            per_conn_view(&summed),
            per_conn_view(&global),
            "node {idx}: per-connection stats must sum to the global block"
        );
        assert!(global.ops_write > 0 && global.ops_read > 0);
    }
}

#[test]
fn traced_pingpong_is_causally_ordered() {
    // With tracing on, a two-node ping-pong must leave a causally consistent
    // event timeline: issue before send, send before the peer's receive,
    // receive before the originator's completion — with timestamps from the
    // one shared simulated clock.
    let iters = 5usize;
    let cfg = SystemConfig::one_link_1g(2).with_tracing(4096);
    let (sim, _cl, eps, conns) = rig(cfg);
    let (a, b) = (eps[0].clone(), eps[1].clone());
    let (c0, c1) = (conns[0][1].unwrap(), conns[1][0].unwrap());
    sim.spawn("ping", async move {
        for _ in 0..iters {
            let h = a
                .write_bytes(c0, 0x100, payload(1, 2_000), OpFlags::RELAXED.with_notify())
                .await;
            a.next_notification().await.expect("pong");
            h.wait().await;
        }
    });
    sim.spawn("pong", async move {
        for _ in 0..iters {
            b.next_notification().await.expect("ping");
            let h = b
                .write_bytes(c1, 0x200, payload(2, 2_000), OpFlags::RELAXED.with_notify())
                .await;
            h.wait().await;
        }
    });
    sim.run().expect_quiescent();

    let snap0 = eps[0].tracer().snapshot().expect("tracing enabled");
    let snap1 = eps[1].tracer().snapshot().expect("tracing enabled");
    assert_eq!(snap0.overwritten + snap1.overwritten, 0, "ring too small");

    // Each ring is an arrival-order timeline of one shared clock.
    for snap in [&snap0, &snap1] {
        let mut prev = 0u64;
        for e in &snap.events {
            assert!(e.t_ns >= prev, "timeline not monotone at {:?}", e);
            prev = e.t_ns;
        }
    }

    let first = |snap: &me_trace::TraceSnapshot, pred: &dyn Fn(&EventKind) -> bool| {
        snap.events
            .iter()
            .find(|e| pred(&e.kind))
            .map(|e| e.t_ns)
            .expect("event kind present")
    };
    let issue0 = first(&snap0, &|k| matches!(k, EventKind::OpIssue { .. }));
    let send0 = first(&snap0, &|k| matches!(k, EventKind::FrameSend { .. }));
    let recv1 = first(&snap1, &|k| matches!(k, EventKind::FrameRecv { .. }));
    let send1 = first(&snap1, &|k| matches!(k, EventKind::FrameSend { .. }));
    let complete0 = first(&snap0, &|k| matches!(k, EventKind::OpComplete { .. }));
    assert!(issue0 <= send0, "issue {issue0} after send {send0}");
    assert!(send0 < recv1, "send {send0} not before peer recv {recv1}");
    assert!(recv1 < send1, "pong sent {send1} before ping arrived {recv1}");
    assert!(
        recv1 < complete0,
        "op completed at {complete0} before the frame even arrived at {recv1}"
    );

    // Both sides completed all their ops and recorded a latency per op.
    for (snap, ep) in [(&snap0, &eps[0]), (&snap1, &eps[1])] {
        let completes = snap.count_events(|k| matches!(k, EventKind::OpComplete { .. }));
        assert_eq!(completes, iters as u64);
        assert_eq!(snap.op_latency_merged().count(), iters as u64);
        assert_eq!(ep.stats().ops_write, iters as u64);
    }
}
