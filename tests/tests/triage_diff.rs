//! End-to-end regression triage: run real triage cells, inject a deliberate
//! slowdown into one protocol layer on the "new" side, and assert the diff
//! engine's verdict *names the phase and layer that moved* — the property
//! `make triage-check` relies on to turn a red CI run into a diagnosis.

use me_trace::diff::layer;
use me_trace::{diff_cell, diff_docs, DiffConfig, Json, Phase, Verdict};
use multiedge_bench::triage::{cell_doc, run_cell, run_cell_with, CellSpec};
use multiedge_bench::MicroKind;
use netsim::time::us_f64;

/// A latency-dominated ping-pong cell: with no pipelining there is no
/// send-window backpressure to soak up an injected delay, so a slowdown
/// surfaces in the phase that actually caused it.
fn pingpong_cell() -> CellSpec {
    CellSpec {
        config: "1L-10G",
        kind: MicroKind::PingPong,
        size: 4 << 10,
        iters: 16,
        rounds: 2,
        base_seed: 4_200,
    }
}

/// Run `spec` clean and with `tweak`, and diff old → new as the gate does.
fn diff_injected(
    spec: &CellSpec,
    tweak: &dyn Fn(&mut multiedge::SystemConfig),
) -> me_trace::CellDiff {
    let old = cell_doc(spec, "test", &run_cell(spec));
    let new = cell_doc(spec, "test", &run_cell_with(spec, tweak));
    diff_cell(&spec.name(), &old, &new, &DiffConfig::default()).expect("cells comparable")
}

/// The determinism guarantee the whole scheme rests on: the same build
/// re-running a cell reproduces the document bit for bit, so two identical
/// builds diff to *exactly* zero — not merely "within noise".
#[test]
fn identical_builds_diff_to_unchanged() {
    let spec = pingpong_cell();
    let d = diff_injected(&spec, &|_| {});
    assert_eq!(d.verdict, Verdict::Unchanged, "headline: {}", d.headline);
    assert_eq!(d.overall.p50_log_ratio, 0.0);
    assert_eq!(d.overall.p99_log_ratio, 0.0);
    for pd in &d.overall.phases {
        assert_eq!(pd.growth_per_op_ns, 0.0, "{} moved", pd.phase.label());
    }
}

/// Injected switch-forwarding delay must be pinned on the network layer,
/// by name, in the human-readable headline. The delay taxes both
/// directions of a ping-pong — data frames (wire) and the acknowledgement
/// path back (ack_return) — so either network-layer phase may dominate,
/// but both must grow and nothing host-side may be blamed.
#[test]
fn switch_delay_regression_names_network_layer() {
    let spec = pingpong_cell();
    let d = diff_injected(&spec, &|cfg| {
        cfg.switch_delay += us_f64(20.0);
    });
    assert_eq!(d.verdict, Verdict::Regressed, "headline: {}", d.headline);
    let dom = d.overall.dominant(false).expect("a phase grew");
    assert!(
        matches!(dom.phase, Phase::Wire | Phase::AckReturn),
        "dominant: {}",
        dom.phase.label()
    );
    assert_eq!(layer(dom.phase), "network");
    assert!(
        d.headline.contains(&format!("+{}", dom.phase.label()))
            && d.headline.contains("network"),
        "headline must name phase and layer: {}",
        d.headline
    );
    let grows = |p: Phase| {
        d.overall.phases.iter().find(|x| x.phase == p).unwrap().growth_per_op_ns > 0.0
    };
    assert!(grows(Phase::Wire), "wire must grow under switch delay");
    assert!(grows(Phase::AckReturn), "ack return must grow under switch delay");
}

/// Injected receive-path processing cost must be pinned on rx_process.
#[test]
fn rx_proc_regression_names_rx_process_phase() {
    let spec = pingpong_cell();
    let d = diff_injected(&spec, &|cfg| {
        cfg.cost.rx_frame_proc += us_f64(15.0);
    });
    assert_eq!(d.verdict, Verdict::Regressed, "headline: {}", d.headline);
    let dom = d.overall.dominant(false).expect("a phase grew");
    assert_eq!(dom.phase, Phase::RxProcess, "dominant: {}", dom.phase.label());
    assert!(
        d.headline.contains("+rx_process"),
        "headline must name the phase: {}",
        d.headline
    );
}

/// Link jitter on a striped topology produces closely-spaced out-of-order
/// arrivals: the reorder phase must visibly gain latency mass. (Jitter also
/// inflates raw wire time, so the *dominant* phase may be either — the
/// point is that the ordering cost is surfaced, not hidden in "wire".)
#[test]
fn jitter_on_striped_rails_grows_reorder_mass() {
    // Small enough that the pipelined frames fit inside the send window —
    // with backpressure the window would soak up the delay and the diff
    // would (correctly but unhelpfully for this test) blame send_window.
    let spec = CellSpec {
        config: "2Lu-1G",
        kind: MicroKind::TwoWay,
        size: 4 << 10,
        iters: 12,
        rounds: 2,
        base_seed: 4_300,
    };
    let d = diff_injected(&spec, &|cfg| {
        cfg.link.jitter = us_f64(300.0);
    });
    assert_eq!(d.verdict, Verdict::Regressed, "headline: {}", d.headline);
    let reorder = d
        .overall
        .phases
        .iter()
        .find(|p| p.phase == Phase::Reorder)
        .expect("reorder delta present");
    assert!(
        reorder.growth_per_op_ns > 0.0,
        "reorder must gain per-op time under jitter (got {} ns)",
        reorder.growth_per_op_ns
    );
    let dom = d.overall.dominant(false).expect("a phase grew");
    assert!(
        matches!(dom.phase, Phase::Reorder | Phase::Wire),
        "dominant should be reorder or wire, got {}",
        dom.phase.label()
    );
}

/// The acceptance-criterion path end to end: two *documents* (as
/// `me-inspect diff` reads them, with a `cells` array), one carrying an
/// injected slowdown — the report must regress and its headline must name
/// the phase, and the machine-readable JSON must carry the same verdict.
#[test]
fn document_level_diff_names_regressed_phase() {
    let spec = pingpong_cell();
    let wrap = |cell: Json| {
        Json::obj()
            .set("schema_version", me_trace::SCHEMA_VERSION)
            .set("bench", "triage")
            .set("cells", vec![cell])
    };
    let old = wrap(cell_doc(&spec, "test", &run_cell(&spec)));
    let new = wrap(cell_doc(
        &spec,
        "test",
        &run_cell_with(&spec, &|cfg| {
            cfg.switch_delay += us_f64(20.0);
        }),
    ));
    let cfg = DiffConfig::default();
    let report = diff_docs(&old, &new, &cfg).expect("documents diffable");
    assert!(report.regressed());
    let dom = report.cells[0]
        .overall
        .dominant(false)
        .expect("a phase grew")
        .phase;
    assert_eq!(layer(dom), "network", "switch delay is a network-layer fault");
    let human = report.render_human(&cfg);
    assert!(
        human.contains(&format!("+{}", dom.label())) && human.contains("REGRESSED"),
        "human report must name the phase:\n{human}"
    );
    let json = report.to_json();
    assert_eq!(json.get("regressed").and_then(|v| v.as_bool()), Some(true));
    me_trace::require_schema(&json).expect("report is schema-stamped");

    // And the reverse direction reads as an improvement of the same phase.
    let rev = diff_docs(&new, &old, &cfg).expect("documents diffable");
    assert!(!rev.regressed());
    assert_eq!(rev.cells[0].verdict, Verdict::Improved);
    let rev_dom = rev.cells[0].overall.dominant(true).expect("a phase shrank");
    assert_eq!(rev_dom.phase, dom, "improvement mirrors the regression");
    assert!(
        rev.cells[0].headline.contains(&format!("-{}", dom.label())),
        "improvement headline: {}",
        rev.cells[0].headline
    );
}
