//! Property coverage for the chaos interposer's determinism contract: the
//! per-frame base decisions (drop, dup, reorder, corrupt) are a pure
//! function of `(seed, node, rail, frame index)` — the same seed produces
//! the same decision stream no matter how the caller interleaves `send`
//! and `advance` (backend polling cadence), and
//! [`ChaosConfig::decisions_for`] predicts the observed effects exactly.
//! Also pins the [`FaultPlan`] interval interpretation shared with netsim.

use bytes::Bytes;
use frame::{Frame, FrameFlags, FrameHeader, FrameKind, MacAddr};
use multiedge::backplane::{Backplane, BpRx, ChaosConfig, FaultBackplane};
use netsim::time::ns;
use netsim::{covered, FaultPlan};
use proptest::prelude::*;

/// A recording backend with a manually stepped clock: `advance` jumps
/// straight to the deadline, `send` logs `(rail, seq)` in arrival order.
struct Probe {
    rails: usize,
    now: u64,
    sent: Vec<(usize, u32)>,
}

impl Probe {
    fn new(rails: usize) -> Self {
        Self {
            rails,
            now: 0,
            sent: Vec::new(),
        }
    }
}

impl Backplane for Probe {
    fn rails(&self) -> usize {
        self.rails
    }
    fn mtu(&self) -> usize {
        frame::MAX_PAYLOAD
    }
    fn peer_mtu(&self) -> usize {
        frame::MAX_PAYLOAD
    }
    fn local_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new(0, rail as u8)
    }
    fn peer_mac(&self, rail: usize) -> MacAddr {
        MacAddr::new(1, rail as u8)
    }
    fn now_ns(&self) -> u64 {
        self.now
    }
    fn send(&mut self, rail: usize, frame: Frame) -> bool {
        self.sent.push((rail, frame.header.seq));
        true
    }
    fn next(&mut self) -> Option<BpRx> {
        None
    }
    fn tx_backlog_ns(&self, _rail: usize) -> u64 {
        0
    }
    fn advance(&mut self, until_ns: u64) -> u64 {
        self.now = self.now.max(until_ns);
        self.now
    }
}

fn test_frame(seq: u32) -> Frame {
    Frame {
        src: MacAddr::new(0, 0),
        dst: MacAddr::new(1, 0),
        header: FrameHeader {
            kind: FrameKind::Data,
            flags: FrameFlags::empty(),
            conn: 0,
            seq,
            ack: 0,
            op_id: 0,
            op_total_len: 0,
            fence_floor: 0,
            remote_addr: 0,
            aux: 0,
        },
        payload: Bytes::new(),
    }
}

/// Submit `n` frames round-robin over two rails, advancing the clock by
/// the scheduled gap before each send — the "polling cadence". Returns the
/// delivered `(rail, seq)` log.
fn run_cadence(cfg: &ChaosConfig, gaps: &[u64]) -> Vec<(usize, u32)> {
    let mut bp = FaultBackplane::new(Probe::new(2), 0, cfg);
    for (i, gap) in gaps.iter().enumerate() {
        let t = bp.now_ns().saturating_add(*gap);
        bp.advance(t);
        bp.send(i % 2, test_frame(i as u32));
    }
    // Flush anything still held (reorder holds with delay 0 release
    // immediately, but a belt-and-suspenders drain keeps the log total).
    let t = bp.now_ns().saturating_add(1);
    bp.advance(t);
    bp.into_inner().sent
}

/// The delivered log `decisions_for` predicts for an n-frame round-robin
/// submission with zero added delay: corrupt/drop vanish, dup doubles.
fn predicted(cfg: &ChaosConfig, n: usize) -> Vec<(usize, u32)> {
    let per_rail = [cfg.decisions_for(0, 0, n), cfg.decisions_for(0, 1, n)];
    let mut next_idx = [0usize, 0usize];
    let mut out = Vec::new();
    for i in 0..n {
        let rail = i % 2;
        let d = per_rail[rail][next_idx[rail]];
        next_idx[rail] += 1;
        if d.corrupt || d.drop {
            continue;
        }
        out.push((rail, i as u32));
        if d.dup {
            out.push((rail, i as u32));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, two arbitrary polling cadences: identical effects — and
    /// both equal to the backplane-free `decisions_for` prediction.
    #[test]
    fn same_seed_same_decisions_regardless_of_cadence(
        seed in any::<u64>(),
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        corrupt in 0.0f64..0.2,
        gaps_a in proptest::collection::vec(0u64..1_000_000, 96),
        gaps_b in proptest::collection::vec(0u64..1_000_000, 96),
    ) {
        // Zero hold-back delay keeps ordering cadence-free, so the entire
        // effect sequence — not just per-frame verdicts — must match.
        let cfg = ChaosConfig::new(seed)
            .with_drop(drop)
            .with_dup(dup)
            .with_reorder(reorder, 0)
            .with_corrupt(corrupt);
        let a = run_cadence(&cfg, &gaps_a);
        let b = run_cadence(&cfg, &gaps_b);
        prop_assert_eq!(&a, &b, "cadence must not change chaos decisions");
        prop_assert_eq!(a, predicted(&cfg, gaps_a.len()),
            "decisions_for must predict the observed effects exactly");
    }

    /// The decision stream is prefix-stable: asking for fewer decisions
    /// yields exactly the head of the longer stream.
    #[test]
    fn decision_stream_is_prefix_stable(
        seed in any::<u64>(),
        k in 1usize..100,
        extra in 0usize..100,
    ) {
        let cfg = ChaosConfig::new(seed).with_drop(0.3).with_dup(0.2)
            .with_reorder(0.2, 50).with_corrupt(0.1);
        let long = cfg.decisions_for(1, 0, k + extra);
        let short = cfg.decisions_for(1, 0, k);
        prop_assert_eq!(&long[..k], &short[..]);
    }

    /// `down_intervals` + `covered` agree with a naive replay of the
    /// LinkDown/LinkUp event sequence at every probed instant.
    #[test]
    fn down_intervals_match_naive_event_replay(
        flips in proptest::collection::vec((1u64..10_000, any::<bool>()), 1..20),
        probes in proptest::collection::vec(0u64..200_000, 32),
    ) {
        // Build a strictly increasing event timeline from cumulative gaps.
        let mut plan = FaultPlan::new();
        let mut at = 0u64;
        let mut events = Vec::new();
        for (gap, down) in &flips {
            at += gap;
            plan = if *down {
                plan.link_down(ns(at), 0, 0)
            } else {
                plan.link_up(ns(at), 0, 0)
            };
            events.push((at, *down));
        }
        let intervals = plan.down_intervals(0, 0);
        for t in probes {
            // Naive state machine: the last event at or before `t` wins.
            let naive = events
                .iter()
                .take_while(|&&(e, _)| e <= t)
                .last()
                .map(|&(_, down)| down)
                .unwrap_or(false);
            prop_assert_eq!(
                covered(&intervals, t),
                naive,
                "t={} intervals={:?} events={:?}",
                t,
                &intervals,
                &events
            );
        }
    }
}
