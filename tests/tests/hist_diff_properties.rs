//! Property tests for the histogram comparison machinery behind regression
//! triage: the quantile-delta is exactly antisymmetric, identical inputs
//! diff to exactly zero, merging histograms then diffing equals diffing the
//! jointly-recorded distributions, and the JSON encoding round-trips
//! bit-exactly — all over random log-bucketed distributions.

use me_trace::diff::{quantile_log_ratio, rel_shift};
use me_trace::{diff_rollups, Json, LogHistogram, PhaseRollup};
use proptest::prelude::*;

/// Random latency samples spanning the histogram's log range, bounded so a
/// 200-sample `sum` stays inside f64's exact-integer range (2^53): the Json
/// number model is f64, so exact round-tripping is only promised there —
/// real artifacts hold nanosecond latencies orders of magnitude below it.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 44), 1..200)
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

const QUANTILES: [f64; 5] = [10.0, 50.0, 90.0, 99.0, 100.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Swapping old and new flips the sign of every quantile delta exactly
    /// (not just approximately): the log-ratio is a difference of the same
    /// two IEEE doubles, so antisymmetry holds bit-for-bit.
    #[test]
    fn quantile_delta_is_antisymmetric(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        for p in QUANTILES {
            let fwd = quantile_log_ratio(&ha, &hb, p);
            let rev = quantile_log_ratio(&hb, &ha, p);
            prop_assert_eq!(fwd, -rev, "p{}: {} vs {}", p, fwd, rev);
        }
    }

    /// A histogram diffed against itself reports exactly zero shift at
    /// every quantile, and a rollup diffed against itself has zero mass
    /// movement and zero per-op growth in every phase.
    #[test]
    fn identical_inputs_diff_to_exactly_zero(a in samples()) {
        let h = hist_of(&a);
        for p in QUANTILES {
            prop_assert_eq!(quantile_log_ratio(&h, &h, p), 0.0);
            prop_assert_eq!(rel_shift(quantile_log_ratio(&h, &h, p)), 0.0);
        }
        let mut r = PhaseRollup::default();
        for (i, &v) in a.iter().enumerate() {
            r.ops += 1;
            r.latency_total_ns += v;
            r.latency_hist.record(v);
            let ph = i % r.phase_total_ns.len();
            r.phase_total_ns[ph] += v;
            r.phase_hist[ph].record(v);
        }
        let d = diff_rollups("self", &r, &r);
        prop_assert_eq!(d.p50_log_ratio, 0.0);
        prop_assert_eq!(d.p99_log_ratio, 0.0);
        for pd in &d.phases {
            prop_assert_eq!(pd.mass_delta, 0.0);
            prop_assert_eq!(pd.growth_per_op_ns, 0.0);
            prop_assert_eq!(pd.p99_log_ratio, 0.0);
        }
    }

    /// Merging per-round histograms and then diffing gives the same answer
    /// as diffing histograms recorded jointly over the concatenated samples
    /// — the property that makes multi-round baselines mergeable at all.
    #[test]
    fn merge_then_diff_equals_diff_of_merges(
        a1 in samples(), a2 in samples(),
        b1 in samples(), b2 in samples(),
    ) {
        let mut old_merged = hist_of(&a1);
        old_merged.merge(&hist_of(&a2));
        let mut new_merged = hist_of(&b1);
        new_merged.merge(&hist_of(&b2));

        let old_joint = hist_of(&[a1.clone(), a2.clone()].concat());
        let new_joint = hist_of(&[b1.clone(), b2.clone()].concat());
        prop_assert_eq!(&old_merged, &old_joint);
        prop_assert_eq!(&new_merged, &new_joint);
        for p in QUANTILES {
            prop_assert_eq!(
                quantile_log_ratio(&old_merged, &new_merged, p),
                quantile_log_ratio(&old_joint, &new_joint, p)
            );
        }
    }

    /// The compact JSON encoding round-trips bit-exactly through the
    /// renderer and parser, so a committed baseline diffs against a live
    /// run exactly as the original in-memory histogram would.
    #[test]
    fn hist_json_round_trips_through_text(a in samples()) {
        let h = hist_of(&a);
        let text = h.to_json().render_pretty();
        let back = LogHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &h);
        for p in QUANTILES {
            prop_assert_eq!(quantile_log_ratio(&h, &back, p), 0.0);
        }
    }
}
