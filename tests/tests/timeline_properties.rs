//! Property tests for the delta-encoded timeline ring
//! ([`me_trace::Timeline`]): under arbitrary drive scripts — random
//! intervals, ring capacities, clock advances, and sampling cadences —
//! every retained counter delta equals the true increase over its window,
//! the telescoping invariant `base + Σ retained deltas == final raw`
//! survives eviction, and the JSONL artifact round-trips into the exact
//! cumulative series the sampler observed.

use me_trace::{imbalance, SourceKind, Timeline, TimelineBuilder, TimelineDoc};
use proptest::prelude::*;

/// One drive step: advance the clock by `dt`, grow the two counters by
/// `(da, db)`, move the gauge to `g`, then maybe commit a row.
#[derive(Debug, Clone)]
struct Step {
    dt: u64,
    da: u64,
    db: u64,
    g: u64,
    force_sample: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (1u64..5_000, 0u64..1_000, 0u64..7, 0u64..100, 0u64..10).prop_map(
            |(dt, da, db, g, f)| Step {
                dt,
                da,
                db,
                g,
                // ~30% of steps force an off-grid commit.
                force_sample: f < 3,
            },
        ),
        1..120,
    )
}

/// Everything the shadow model knows about one committed row.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShadowRow {
    t_ns: u64,
    raw_a: u64,
    raw_b: u64,
    gauge: u64,
}

/// Drive a 2-counter + 1-gauge timeline through `script`, sampling on the
/// interval grid plus wherever the script forces an off-grid commit, and
/// record what a perfect observer would have seen at each commit.
fn drive(script: &[Step], interval_ns: u64, capacity: usize) -> (Timeline, Vec<ShadowRow>) {
    let mut b = TimelineBuilder::new();
    let ca = b.counter("a");
    let cb = b.counter("b");
    let gg = b.gauge("g");
    let mut tl = b.build(interval_ns, capacity, 0);
    let (mut now, mut raw_a, mut raw_b) = (0u64, 0u64, 0u64);
    let mut shadow = Vec::new();
    for s in script {
        now += s.dt;
        raw_a += s.da;
        raw_b += s.db;
        tl.set(ca, raw_a);
        tl.set(cb, raw_b);
        tl.set(gg, s.g);
        if tl.due(now) || s.force_sample {
            tl.sample(now);
            shadow.push(ShadowRow {
                t_ns: now,
                raw_a,
                raw_b,
                gauge: s.g,
            });
        }
    }
    (tl, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// For every counter: `base + Σ retained deltas == final raw == the
    /// true cumulative total`, no matter the cadence or how many rows the
    /// ring evicted; and the accounting identity
    /// `samples_total == retained + evicted` holds.
    #[test]
    fn counters_telescope_through_eviction(
        script in steps(),
        interval_ns in 1u64..20_000,
        capacity in 1usize..12,
    ) {
        let (tl, shadow) = drive(&script, interval_ns, capacity);
        let (ca, cb) = (tl.source_id("a").unwrap(), tl.source_id("b").unwrap());
        // `final_raw` is the reading at the last *committed* row — steps
        // staged after the final sample are by design not in the ring yet.
        if let Some(last) = shadow.last() {
            prop_assert_eq!(tl.final_raw(ca), last.raw_a);
            prop_assert_eq!(tl.final_raw(cb), last.raw_b);
        }
        prop_assert_eq!(tl.base_raw(ca) + tl.column_sum(ca), tl.final_raw(ca));
        prop_assert_eq!(tl.base_raw(cb) + tl.column_sum(cb), tl.final_raw(cb));
        prop_assert_eq!(tl.samples_total(), tl.len() as u64 + tl.evicted());
        prop_assert_eq!(shadow.len() as u64, tl.samples_total());
    }

    /// Every retained row's counter delta equals the true increase over
    /// its window (monotone sources never produce a "negative" delta —
    /// the stored value is exactly `raw[i] − raw[i−1]`), gauge cells hold
    /// the raw reading at commit time, and timestamps are the commit
    /// instants in strictly increasing order.
    #[test]
    fn retained_rows_mirror_the_true_series(
        script in steps(),
        interval_ns in 1u64..20_000,
        capacity in 1usize..12,
    ) {
        let (tl, shadow) = drive(&script, interval_ns, capacity);
        let (ca, cb, gg) = (
            tl.source_id("a").unwrap(),
            tl.source_id("b").unwrap(),
            tl.source_id("g").unwrap(),
        );
        // The retained window is the shadow's suffix.
        let skip = shadow.len() - tl.len();
        let mut prev = if skip == 0 {
            ShadowRow { t_ns: 0, raw_a: 0, raw_b: 0, gauge: 0 }
        } else {
            shadow[skip - 1].clone()
        };
        prop_assert_eq!(tl.base_raw(ca), prev.raw_a);
        prop_assert_eq!(tl.base_raw(cb), prev.raw_b);
        for (i, expect) in shadow[skip..].iter().enumerate() {
            let (t, vals) = tl.row(i);
            prop_assert_eq!(t, expect.t_ns);
            prop_assert!(t > prev.t_ns || (i == 0 && skip == 0 && t == expect.t_ns));
            prop_assert_eq!(vals[ca.index()], expect.raw_a - prev.raw_a);
            prop_assert_eq!(vals[cb.index()], expect.raw_b - prev.raw_b);
            prop_assert_eq!(vals[gg.index()], expect.gauge);
            prev = expect.clone();
        }
    }

    /// The JSONL artifact round-trips: the parsed document reconciles,
    /// reproduces every header fact, and [`TimelineDoc::decode`] rebuilds
    /// the exact cumulative counter series and raw gauge series the
    /// sampler observed.
    #[test]
    fn jsonl_round_trips_to_the_exact_series(
        script in steps(),
        interval_ns in 1u64..20_000,
        capacity in 1usize..12,
    ) {
        let (tl, shadow) = drive(&script, interval_ns, capacity);
        let doc = TimelineDoc::parse_jsonl(&tl.to_jsonl()).unwrap();
        doc.reconcile().unwrap();
        prop_assert_eq!(doc.interval_ns, tl.interval_ns());
        prop_assert_eq!(doc.base_time_ns, tl.base_time_ns());
        prop_assert_eq!(doc.evicted, tl.evicted());
        prop_assert_eq!(doc.samples_total, tl.samples_total());
        prop_assert_eq!(doc.samples.len(), tl.len());
        prop_assert_eq!(doc.sources.len(), tl.sources());
        for (c, s) in doc.sources.iter().enumerate() {
            prop_assert_eq!(&s.name, &tl.names()[c]);
            prop_assert_eq!(s.kind, tl.kinds()[c]);
        }
        let skip = shadow.len() - tl.len();
        let decoded_a = doc.decode(doc.column("a").unwrap());
        let decoded_g = doc.decode(doc.column("g").unwrap());
        for (i, expect) in shadow[skip..].iter().enumerate() {
            prop_assert_eq!(decoded_a[i], (expect.t_ns, expect.raw_a));
            prop_assert_eq!(decoded_g[i], (expect.t_ns, expect.gauge));
        }
        // Counter columns never decode to a decreasing series.
        let mut last = doc.sources[doc.column("a").unwrap()].base;
        for (_, raw) in &decoded_a {
            prop_assert!(*raw >= last);
            last = *raw;
        }
        let _ = SourceKind::Counter; // used via kinds() comparison above
    }

    /// The imbalance index is scale-aware: `max/mean ≥ 1` always, exactly
    /// 1 for uniform rows, and the named member is a true argmax.
    #[test]
    fn imbalance_names_a_true_argmax(vals in proptest::collection::vec(0u64..1_000, 1..16)) {
        let (idx, hot) = imbalance(&vals);
        prop_assert!(idx >= 1.0);
        let max = *vals.iter().max().unwrap();
        if vals.iter().sum::<u64>() > 0 {
            prop_assert_eq!(vals[hot], max);
            let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
            prop_assert!((idx - max as f64 / mean).abs() < 1e-12);
        } else {
            prop_assert_eq!(idx, 1.0);
            prop_assert_eq!(hot, 0);
        }
    }
}
