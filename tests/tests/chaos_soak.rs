//! Chaos soak: identical seeded fault schedules driven through the
//! backend-agnostic [`FaultBackplane`] interposer over BOTH backends —
//! the deterministic simulator and real UDP loopback sockets. Every
//! schedule must end in exactly-once delivery with fence ordering intact,
//! and the two backends must agree on every timing-independent protocol
//! counter. Liveness scenarios (total blackout) must terminate with a
//! typed [`WireError`] and a `watchdog` flight dump instead of hanging;
//! rail blackouts must leave a `rail_death` post-mortem artifact.

use bytes::Bytes;
use me_trace::{FlightConfig, FlightRecorder, SpanRecorder};
use multiedge::backplane::{
    drain, drive_with, Backplane, ChaosConfig, DriveLimits, FaultBackplane, SimBackplane,
    UdpFabric, WireEndpoint, WireError,
};
use multiedge::{OpFlags, ProtoConfig, SystemConfig};
use netsim::time::ms;
use netsim::{build_cluster, FaultPlan, FaultTarget, GilbertElliott, Sim};

/// Liveness bounds for a soak drive. On UDP the clock is wall time, so
/// these are real seconds: two without progress trips the watchdog, thirty
/// total caps a slow CI machine.
fn soak_limits() -> DriveLimits {
    DriveLimits {
        progress_timeout_ns: 2_000_000_000,
        hard_budget_ns: 30_000_000_000,
        fence_stall_limit_ns: 0,
    }
}

/// Protocol tuning for chaos runs: identical on both backends, with faster
/// tail recovery (capped RTO, quicker rail verdicts) so a lossy UDP run
/// stays in wall-clock milliseconds.
fn chaos_proto() -> ProtoConfig {
    let mut p = SystemConfig::two_link_1g(2).proto;
    p.rto_max = netsim::time::ms(20);
    p.rail_dead_after = 4;
    p
}

fn patterned(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ salt).collect()
}

/// The soak workload: mixed sizes, relaxed and fenced ops, one notify.
fn workload() -> Vec<(u64, Vec<u8>, OpFlags)> {
    vec![
        (0x1_0000, patterned(12_000, 1), OpFlags::RELAXED),
        (0x2_0000, patterned(30_000, 2), OpFlags::ORDERED),
        (0x4_0000, patterned(8_000, 3), OpFlags::RELAXED),
        (0x8_0000, patterned(20_000, 4), OpFlags::ORDERED),
        (0x10_0000, patterned(5_000, 5), OpFlags::ORDERED_NOTIFY),
        (0x20_0000, patterned(16_000, 6), OpFlags::RELAXED),
    ]
}

/// Timing-independent fingerprint of a *completed* chaos run. Unique
/// deliveries (`data_frames_recv` counts first copies only), byte totals,
/// fence frontiers and op counts are workload-determined once every op
/// lands exactly once — identical on both backends no matter how the loss
/// pattern unfolded. Retransmit, duplicate and out-of-order counters are
/// timing-dependent and deliberately excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChaosFingerprint {
    ops_write: u64,
    bytes_written: u64,
    unique_frames_recv: u64,
    unique_bytes_recv: u64,
    notifications: u64,
    applied_below: u64,
    cumulative: u64,
    completions: u64,
}

/// Outcome of one schedule on one backend.
struct ChaosRun {
    fp: ChaosFingerprint,
    storm_suppressed: u64,
}

/// Issue the workload from node 0, drive both endpoints to completion
/// under `limits`, and assert the exactly-once / fence-ordering contract
/// before returning the fingerprint. `label` names the backend+schedule in
/// assertion messages.
fn run_schedule<BA: Backplane, BB: Backplane>(
    proto: &ProtoConfig,
    bpa: &mut BA,
    bpb: &mut BB,
    limits: DriveLimits,
    flight: Option<&FlightRecorder>,
    label: &str,
) -> Result<ChaosRun, WireError> {
    let spans = SpanRecorder::disabled();
    let (mut a, mut b) = WireEndpoint::pair(proto, bpa.rails(), &spans);
    if let Some(fr) = flight {
        a.set_flight(fr);
        b.set_flight(fr);
    }
    let writes = workload();
    let total_ops = writes.len() as u64;
    let mut ops = Vec::new();
    for (addr, data, flags) in &writes {
        ops.push(a.write(0, bpa, *addr, Bytes::from(data.clone()), *flags));
    }
    drive_with(
        &mut a,
        bpa,
        &mut b,
        bpb,
        |_, _, _, _| {},
        |a, b| {
            let sa = a.conn_state(0);
            let sb = b.conn_state(0);
            sa.acked == sa.next_seq && sb.applied_below == total_ops && !sb.has_gap
        },
        limits,
    )?;

    // Exactly-once delivery: every byte of every op is present exactly as
    // written, every op completed exactly once, in issue order.
    for (addr, data, _) in &writes {
        assert_eq!(
            &b.mem_read(*addr, data.len()),
            data,
            "[{label}] payload at {addr:#x}"
        );
    }
    let completed: Vec<u64> = std::iter::from_fn(|| a.take_completion().map(|c| c.op)).collect();
    assert_eq!(completed, ops, "[{label}] ops complete exactly once, in order");
    let n = b
        .take_notification()
        .unwrap_or_else(|| panic!("[{label}] the notify op must notify"));
    assert_eq!((n.from_node, n.addr), (0, 0x10_0000), "[{label}] notification");
    assert!(
        b.take_notification().is_none(),
        "[{label}] notification arrives exactly once"
    );
    // Fence ordering: every op applied in order, nothing left buffered.
    let sb = b.conn_state(0);
    assert_eq!(sb.applied_below, total_ops, "[{label}] all ops fence-applied");
    assert_eq!(sb.fence_buffered, 0, "[{label}] no fragment left behind a fence");
    assert!(!sb.has_gap, "[{label}] no receive gap after completion");

    let sa = a.stats();
    let sbs = b.stats();
    Ok(ChaosRun {
        fp: ChaosFingerprint {
            ops_write: sa.ops_write,
            bytes_written: sa.bytes_written,
            unique_frames_recv: sbs.data_frames_recv,
            unique_bytes_recv: sbs.data_bytes_recv,
            notifications: sbs.notifications,
            applied_below: sb.applied_below,
            cumulative: sb.cumulative,
            completions: completed.len() as u64,
        },
        storm_suppressed: a.storm_suppressed() + b.storm_suppressed(),
    })
}

/// Run one schedule over the simulator backend, both ends wrapped in the
/// interposer.
fn run_on_sim(
    proto: &ProtoConfig,
    chaos: &ChaosConfig,
    flight: Option<&FlightRecorder>,
    label: &str,
) -> Result<ChaosRun, WireError> {
    let cfg = SystemConfig::two_link_1g(2);
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
    let mut ca = FaultBackplane::new(bpa, 0, chaos);
    let mut cb = FaultBackplane::new(bpb, 1, chaos);
    if let Some(fr) = flight {
        ca.set_flight(fr);
        cb.set_flight(fr);
    }
    run_schedule(proto, &mut ca, &mut cb, soak_limits(), flight, label)
}

/// Run the same schedule over real UDP loopback sockets.
fn run_on_udp(
    proto: &ProtoConfig,
    chaos: &ChaosConfig,
    flight: Option<&FlightRecorder>,
    label: &str,
) -> Result<ChaosRun, WireError> {
    let fabric = UdpFabric::new(2).expect("bind loopback sockets");
    let (bpa, bpb) = fabric.pair();
    let mut ca = FaultBackplane::new(bpa, 0, chaos);
    let mut cb = FaultBackplane::new(bpb, 1, chaos);
    if let Some(fr) = flight {
        ca.set_flight(fr);
        cb.set_flight(fr);
    }
    run_schedule(proto, &mut ca, &mut cb, soak_limits(), flight, label)
}

/// The seeded schedules of the soak: random loss/dup/reorder/corruption, a
/// Gilbert–Elliott burst process, and a scripted NIC stall. (Scenarios
/// with scripted blackouts get dedicated tests below because they also
/// assert flight-dump artifacts.)
fn schedules() -> Vec<(&'static str, ChaosConfig)> {
    vec![
        (
            "lossy",
            ChaosConfig::new(0xC0FFEE)
                .with_drop(0.05)
                .with_dup(0.02)
                .with_reorder(0.05, 200_000)
                .with_corrupt(0.01),
        ),
        (
            "bursty",
            ChaosConfig::new(0xB00B5).with_reorder(0.03, 100_000).with_plan(
                FaultPlan::new().burst(
                    ms(0),
                    FaultTarget::Rail { rail: 0 },
                    GilbertElliott::bursty_loss(0.02, 0.4, 0.6),
                ),
            ),
        ),
        (
            "stall",
            ChaosConfig::new(0x5EED)
                .with_drop(0.03)
                .with_plan(FaultPlan::new().nic_stall(ms(0), 1, 0, ms(3))),
        ),
    ]
}

#[test]
fn seeded_schedules_deliver_exactly_once_on_both_backends() {
    let proto = chaos_proto();
    for (name, chaos) in schedules() {
        let sim = run_on_sim(&proto, &chaos, None, &format!("sim/{name}"))
            .unwrap_or_else(|e| panic!("sim run of schedule '{name}' failed: {e}"));
        let udp = run_on_udp(&proto, &chaos, None, &format!("udp/{name}"))
            .unwrap_or_else(|e| panic!("udp run of schedule '{name}' failed: {e}"));
        assert_eq!(
            sim.fp, udp.fp,
            "schedule '{name}': timing-independent fingerprints must be \
             identical across backends"
        );
    }
}

/// A unique-per-test scratch dir under the target directory.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A flight recorder whose only dump trigger is the one under test.
fn flight_for(dir: &std::path::Path, dump_on_rail_death: bool) -> FlightRecorder {
    FlightRecorder::enabled(FlightConfig {
        rto_backoff_trigger: 0,
        fence_stall_trigger_ns: 0,
        dump_on_rail_death,
        dump_dir: Some(dir.to_string_lossy().into_owned()),
        ..FlightConfig::default()
    })
}

/// One rail dark from the start: the run must complete on the surviving
/// rail, rail health must declare the dead rail, and the flight recorder
/// must leave a `rail_death` post-mortem artifact — on both backends.
#[test]
fn rail_blackout_completes_and_dumps_rail_death() {
    let proto = chaos_proto();
    let chaos = ChaosConfig::new(0xDEAD).with_plan(FaultPlan::new().rail_down(ms(0), 1));
    for backend in ["sim", "udp"] {
        let dir = scratch(&format!("chaos_rail_death_{backend}"));
        let fr = flight_for(&dir, true);
        let label = format!("{backend}/rail-blackout");
        let run = match backend {
            "sim" => run_on_sim(&proto, &chaos, Some(&fr), &label),
            _ => run_on_udp(&proto, &chaos, Some(&fr), &label),
        }
        .unwrap_or_else(|e| panic!("[{label}] must survive on the live rail: {e}"));
        assert_eq!(run.fp.ops_write, workload().len() as u64);

        let dumps = fr.dumps();
        assert!(
            dumps.iter().any(|d| d.trigger == "rail_death"),
            "[{label}] rail blackout must produce a rail_death dump \
             (got {:?})",
            dumps.iter().map(|d| d.trigger.clone()).collect::<Vec<_>>()
        );
        let dump = dumps.iter().find(|d| d.trigger == "rail_death").unwrap();
        let path = dump.path.as_ref().expect("dump_dir set => artifact written");
        let text = std::fs::read_to_string(path).expect("dump artifact readable");
        let parsed = me_trace::Json::parse(&text).expect("artifact is valid JSON");
        assert_eq!(
            parsed.get("trigger").and_then(|t| t.as_str()),
            Some("rail_death"),
            "[{label}] artifact carries the trigger"
        );
    }
}

/// Every rail dark from the start: the drive must terminate with a typed
/// [`WireError`] within the watchdog deadline — never hang — and leave a
/// `watchdog` flight dump, on both backends.
#[test]
fn total_blackout_trips_typed_error_within_deadline() {
    let proto = chaos_proto();
    let chaos = ChaosConfig::new(0x0FF)
        .with_plan(FaultPlan::new().rail_down(ms(0), 0).rail_down(ms(0), 1));
    // Tight bounds: the wall clock proves the "never hangs" claim on UDP.
    let limits = DriveLimits {
        progress_timeout_ns: 300_000_000,
        hard_budget_ns: 5_000_000_000,
        fence_stall_limit_ns: 0,
    };
    for backend in ["sim", "udp"] {
        let dir = scratch(&format!("chaos_watchdog_{backend}"));
        let fr = flight_for(&dir, false);
        let spans = SpanRecorder::disabled();
        let (mut a, mut b) = WireEndpoint::pair(&proto, 2, &spans);
        a.set_flight(&fr);
        b.set_flight(&fr);
        let started = std::time::Instant::now();
        let err = if backend == "sim" {
            let cfg = SystemConfig::two_link_1g(2);
            let sim = Sim::new(cfg.seed);
            let cluster = build_cluster(&sim, cfg.cluster_spec());
            let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
            let mut ca = FaultBackplane::new(bpa, 0, &chaos);
            let mut cb = FaultBackplane::new(bpb, 1, &chaos);
            let op = a.write(0, &mut ca, 0x1000, Bytes::from(patterned(10_000, 9)), OpFlags::ORDERED);
            let res = drain(&mut a, &mut ca, &mut b, &mut cb, limits);
            (op, res)
        } else {
            let fabric = UdpFabric::new(2).expect("bind loopback sockets");
            let (bpa, bpb) = fabric.pair();
            let mut ca = FaultBackplane::new(bpa, 0, &chaos);
            let mut cb = FaultBackplane::new(bpb, 1, &chaos);
            let op = a.write(0, &mut ca, 0x1000, Bytes::from(patterned(10_000, 9)), OpFlags::ORDERED);
            let res = drain(&mut a, &mut ca, &mut b, &mut cb, limits);
            (op, res)
        };
        let (op, res) = err;
        let err = res.expect_err("a fully dark fabric cannot quiesce");
        // UDP runs on the wall clock: the typed error must arrive within
        // the hard budget (plus slack for a loaded CI machine), which is
        // the "never hangs" guarantee in wall time.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(20),
            "[{backend}] watchdog must trip within its deadline, took {:?}",
            started.elapsed()
        );
        assert!(
            matches!(
                err,
                WireError::PeerUnreachable { .. }
                    | WireError::AllRailsDead { .. }
                    | WireError::Stalled { .. }
            ),
            "[{backend}] blackout classifies as unreachable/dead-rails, got {err}"
        );
        // The watchdog trip left a post-mortem dump on disk.
        let dumps = fr.dumps();
        assert!(
            dumps.iter().any(|d| d.trigger == "watchdog"),
            "[{backend}] watchdog trip must dump (got {:?})",
            dumps.iter().map(|d| d.trigger.clone()).collect::<Vec<_>>()
        );
        // Graceful failure: the casualty list names the abandoned op and
        // the endpoint stops retrying.
        let casualties = a.abort_pending(0);
        assert_eq!(casualties, vec![op], "[{backend}] abort reports the lost op");
    }
}

/// Graceful shutdown under loss: `drain` flushes queued sends, closes
/// gaps and empties fences before returning, so dropping the endpoints
/// abandons nothing.
#[test]
fn drain_quiesces_under_loss_on_both_backends() {
    let proto = chaos_proto();
    let chaos = ChaosConfig::new(0xD0D0).with_drop(0.06).with_dup(0.02);
    let spans = SpanRecorder::disabled();
    let writes = workload();

    // Sim backend.
    {
        let cfg = SystemConfig::two_link_1g(2);
        let sim = Sim::new(cfg.seed);
        let cluster = build_cluster(&sim, cfg.cluster_spec());
        let (bpa, bpb) = SimBackplane::pair(&sim, &cluster);
        let mut ca = FaultBackplane::new(bpa, 0, &chaos);
        let mut cb = FaultBackplane::new(bpb, 1, &chaos);
        let (mut a, mut b) = WireEndpoint::pair(&proto, 2, &spans);
        for (addr, data, flags) in &writes {
            a.write(0, &mut ca, *addr, Bytes::from(data.clone()), *flags);
        }
        drain(&mut a, &mut ca, &mut b, &mut cb, soak_limits()).expect("sim drain");
        assert!(a.quiesced() && b.quiesced(), "sim: both sides quiesced");
        for (addr, data, _) in &writes {
            assert_eq!(&b.mem_read(*addr, data.len()), data);
        }
    }
    // UDP backend.
    {
        let fabric = UdpFabric::new(2).expect("bind loopback sockets");
        let (bpa, bpb) = fabric.pair();
        let mut ca = FaultBackplane::new(bpa, 0, &chaos);
        let mut cb = FaultBackplane::new(bpb, 1, &chaos);
        let (mut a, mut b) = WireEndpoint::pair(&proto, 2, &spans);
        for (addr, data, flags) in &writes {
            a.write(0, &mut ca, *addr, Bytes::from(data.clone()), *flags);
        }
        drain(&mut a, &mut ca, &mut b, &mut cb, soak_limits()).expect("udp drain");
        assert!(a.quiesced() && b.quiesced(), "udp: both sides quiesced");
        for (addr, data, _) in &writes {
            assert_eq!(&b.mem_read(*addr, data.len()), data);
        }
    }
}

/// The NACK storm cap: with a burst budget of 1 under heavy loss, the
/// endpoint must suppress (and later recover) the excess retransmissions
/// instead of flooding the fabric — and the run still completes
/// exactly-once.
#[test]
fn nack_storm_cap_suppresses_and_still_completes() {
    let mut proto = chaos_proto();
    proto.nack_resend_burst = 1;
    let chaos = ChaosConfig::new(0x57012).with_drop(0.20);
    let run = run_on_sim(&proto, &chaos, None, "sim/storm").expect("storm run completes");
    assert!(
        run.storm_suppressed > 0,
        "heavy loss with burst budget 1 must suppress some NACK resends"
    );
}
