//! Integration tests for the UDP backplane: the same `WireEndpoint`
//! protocol driver the simulator backend runs, over real loopback
//! sockets — round-trip integrity, MTU-boundary fragmentation, and a
//! sim-vs-UDP stats fingerprint that must match exactly in every
//! timing-independent counter.

use bytes::Bytes;
use me_trace::{FlightConfig, FlightRecorder, SpanRecorder};
use multiedge::backplane::{
    drive, Backplane, ChaosConfig, FaultBackplane, SimBackplane, UdpFabric, UdpFabricConfig,
    UdpRxError, WireEndpoint,
};
use multiedge::{OpFlags, ProtoStats, SystemConfig};
use netsim::{build_cluster, Sim};
use std::cell::Cell;

/// Wall-clock stall budget per test drive: loopback traffic completes in
/// milliseconds; hitting this means the protocol wedged.
const BUDGET_NS: u64 = 20_000_000_000;

fn patterned(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ salt).collect()
}

fn proto_config() -> SystemConfig {
    SystemConfig::two_link_1g(2)
}

/// Drive until node 0's send direction is fully acknowledged.
fn drive_until_quiesced<BA: Backplane, BB: Backplane>(
    a: &mut WireEndpoint,
    bpa: &mut BA,
    b: &mut WireEndpoint,
    bpb: &mut BB,
) {
    drive(
        a,
        bpa,
        b,
        bpb,
        |_, _, _, _| {},
        |a, b| {
            a.conn_state(0).acked == a.conn_state(0).next_seq
                && b.conn_state(0).acked == b.conn_state(0).next_seq
        },
        BUDGET_NS,
    )
    .expect("loopback transfer quiesces");
}

#[test]
fn udp_round_trip_preserves_data_and_invariants() {
    let cfg = proto_config();
    let fabric = UdpFabric::new(2).expect("bind loopback sockets");
    let (mut bpa, mut bpb) = fabric.pair();
    let spans = SpanRecorder::enabled(1 << 12);
    let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, 2, &spans);

    // A mix of sizes and ordering flags, including a multi-fragment
    // ordered write and a fenced notify, all to distinct addresses.
    let writes: Vec<(u64, Vec<u8>, OpFlags)> = vec![
        (0x1000, patterned(100, 1), OpFlags::RELAXED),
        (0x2000, patterned(10_000, 2), OpFlags::ORDERED),
        (0x8000, patterned(40_000, 3), OpFlags::RELAXED),
        (0x20_000, patterned(5_000, 4), OpFlags::ORDERED_NOTIFY),
    ];
    let mut ops = Vec::new();
    for (addr, data, flags) in &writes {
        ops.push(a.write(0, &mut bpa, *addr, Bytes::from(data.clone()), *flags));
    }
    drive_until_quiesced(&mut a, &mut bpa, &mut b, &mut bpb);

    // Payload integrity at the receiver.
    for (addr, data, _) in &writes {
        assert_eq!(&b.mem_read(*addr, data.len()), data, "payload at {addr:#x}");
    }
    // Every op completed, in issue order (cumulative acks are ordered).
    let completed: Vec<u64> = std::iter::from_fn(|| a.take_completion().map(|c| c.op)).collect();
    assert_eq!(completed, ops);
    // The fenced notify arrived exactly once.
    let n = b.take_notification().expect("notify flag produces a notification");
    assert_eq!((n.from_node, n.addr, n.len), (0, 0x20_000, 5_000));
    assert!(b.take_notification().is_none());

    // Loss-free sequence/fence invariants on both sides.
    let sa = a.conn_state(0);
    assert_eq!(sa.acked, sa.next_seq, "send window fully acknowledged");
    let sb = b.conn_state(0);
    assert_eq!(sb.cumulative, sa.next_seq, "receiver admitted every frame");
    assert!(!sb.has_gap, "no receive gap after quiesce");
    assert_eq!(sb.fence_buffered, 0, "no fragment stuck behind a fence");
    assert_eq!(
        sb.applied_below,
        writes.len() as u64,
        "all ops applied in fence order"
    );
    // Nothing was mangled on the wire.
    assert_eq!(fabric.decode_dropped(), 0);
    let stats = a.stats();
    assert_eq!(stats.ops_write, writes.len() as u64);
    assert_eq!(stats.retransmits(), 0, "loopback run must be loss-free");
    assert_eq!(b.stats().dup_frames_recv, 0);
}

#[test]
fn udp_mtu_boundary_fragmentation() {
    let cfg = proto_config();
    let mtu = frame::MAX_PAYLOAD;
    // (payload length, expected frame count): exactly one MTU stays one
    // frame, one byte more must fragment, one byte less stays one frame.
    let cases = [
        (mtu - 1, 1u64),
        (mtu, 1),
        (mtu + 1, 2),
        (2 * mtu, 2),
        (2 * mtu + 1, 3),
    ];
    for (len, frames) in cases {
        let fabric = UdpFabric::new(1).expect("bind loopback sockets");
        let (mut bpa, mut bpb) = fabric.pair();
        let spans = SpanRecorder::disabled();
        let (mut a, mut b) = WireEndpoint::pair(&cfg.proto, 1, &spans);
        let data = patterned(len, len as u8);
        a.write(0, &mut bpa, 0x4000, Bytes::from(data.clone()), OpFlags::RELAXED);
        drive_until_quiesced(&mut a, &mut bpa, &mut b, &mut bpb);
        assert_eq!(b.mem_read(0x4000, len), data, "payload of length {len}");
        let s = a.stats();
        assert_eq!(
            (s.data_frames_sent, s.data_bytes_sent),
            (frames, len as u64),
            "fragmentation of a {len}-byte write (MTU {mtu})"
        );
        assert_eq!(fabric.decode_dropped(), 0);
    }
}

/// Timing-independent protocol counters that must agree exactly between a
/// run over the simulator and a run over real sockets. Timing-dependent
/// counters (out-of-order arrivals, explicit-ack counts, delayed-ack
/// behavior) legitimately differ between virtual and wall-clock time and
/// are deliberately excluded.
fn fingerprint(s: &ProtoStats) -> [u64; 8] {
    [
        s.ops_write,
        s.bytes_written,
        s.data_frames_sent,
        s.data_bytes_sent,
        s.data_frames_recv,
        s.data_bytes_recv,
        s.retransmits(),
        s.dup_frames_recv,
    ]
}

/// The fingerprint workload: streaming writes one way plus a notified
/// request/reply, exercising fragmentation, fences and both directions.
fn run_fingerprint<BA: Backplane, BB: Backplane>(
    proto: &multiedge::ProtoConfig,
    rails: usize,
    bpa: &mut BA,
    bpb: &mut BB,
) -> ([u64; 8], [u64; 8]) {
    let spans = SpanRecorder::disabled();
    let (mut a, mut b) = WireEndpoint::pair(proto, rails, &spans);
    for i in 0..6u64 {
        let flags = if i % 2 == 0 {
            OpFlags::RELAXED
        } else {
            OpFlags::ORDERED
        };
        a.write(
            0,
            bpa,
            0x1_0000 + i * 0x1_0000,
            Bytes::from(patterned(10_000, i as u8)),
            flags,
        );
    }
    a.write(
        0,
        bpa,
        0x10_0000,
        Bytes::from(patterned(2_000, 0xEE)),
        OpFlags::RELAXED.with_notify(),
    );
    let replied = Cell::new(false);
    drive(
        &mut a,
        bpa,
        &mut b,
        bpb,
        |_a, _bpa, b, bpb| {
            if b.take_notification().is_some() {
                replied.set(true);
                b.write(
                    0,
                    bpb,
                    0x20_0000,
                    Bytes::from(patterned(2_000, 0xFF)),
                    OpFlags::RELAXED,
                );
            }
        },
        |a, b| {
            replied.get()
                && a.conn_state(0).acked == a.conn_state(0).next_seq
                && b.conn_state(0).acked == b.conn_state(0).next_seq
        },
        BUDGET_NS,
    )
    .expect("fingerprint workload quiesces");
    (fingerprint(&a.stats()), fingerprint(&b.stats()))
}

/// Drain node `node`'s receive path until `pred` holds or ~2s elapse —
/// loopback delivery is fast but not instantaneous, and the receive
/// counters only move when a poll drains the sockets.
fn poll_until<B: Backplane>(bp: &mut B, mut pred: impl FnMut() -> bool) -> bool {
    for _ in 0..2000 {
        while bp.next().is_some() {}
        if pred() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    false
}

/// A checksum-damaged datagram must be counted as a *corrupt* drop —
/// distinct from malformed — and surface a typed receive error, never a
/// decoded frame.
#[test]
fn udp_corrupt_datagram_splits_from_malformed() {
    let fabric = UdpFabric::new(1).expect("bind loopback sockets");
    let (_bpa, mut bpb) = fabric.pair();

    // A structurally valid frame with one payload byte flipped after
    // encoding: the header parses, the checksum does not.
    let f = frame::Frame {
        src: frame::MacAddr::new(0, 0),
        dst: frame::MacAddr::new(1, 0),
        header: frame::FrameHeader {
            kind: frame::FrameKind::Data,
            flags: frame::FrameFlags::empty(),
            conn: 0,
            seq: 7,
            ack: 0,
            op_id: 0,
            op_total_len: 64,
            fence_floor: 0,
            remote_addr: 0x1000,
            aux: 0,
        },
        payload: Bytes::from(vec![0xABu8; 64]),
    };
    let mut bytes = Vec::new();
    frame::encode_frame_into(&f, &mut bytes);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fabric.inject_raw(0, 0, &bytes).expect("inject over loopback");
    assert!(
        poll_until(&mut bpb, || fabric.stats().frames_corrupt_dropped == 1),
        "corrupt datagram must be counted, stats: {:?}",
        fabric.stats()
    );
    assert!(
        matches!(
            fabric.take_rx_error(),
            Some(UdpRxError::Corrupt { node: 1, rail: 0, .. })
        ),
        "checksum damage surfaces as a typed Corrupt error"
    );

    // Garbage that is not a MultiEdge frame at all: malformed, not corrupt.
    fabric
        .inject_raw(0, 0, &[0xDE, 0xAD, 0xBE, 0xEF])
        .expect("inject over loopback");
    assert!(
        poll_until(&mut bpb, || fabric.stats().frames_malformed_dropped == 1),
        "malformed datagram must be counted, stats: {:?}",
        fabric.stats()
    );
    assert!(matches!(
        fabric.take_rx_error(),
        Some(UdpRxError::Malformed { node: 1, rail: 0, .. })
    ));
    let s = fabric.stats();
    assert_eq!(
        (s.frames_corrupt_dropped, s.frames_malformed_dropped, s.delivered),
        (1, 1, 0),
        "the two decode-failure classes stay distinct and deliver nothing"
    );
    assert_eq!(fabric.decode_dropped(), 2, "legacy combined counter still sums");
}

/// The receive-error log is bounded: overflowing it must evict the oldest
/// entries *and say so*. Before the `rx_errors_dropped` counter, evictions
/// were silent — a burst of errors could vanish without any trace that the
/// log had wrapped.
#[test]
fn udp_rx_error_ring_overflow_is_counted_not_silent() {
    const RING: u64 = 32;
    const INJECTED: u64 = RING + 9;
    let fabric = UdpFabric::new(1).expect("bind loopback sockets");
    let (_bpa, mut bpb) = fabric.pair();
    for i in 0..INJECTED {
        // Malformed on purpose: not a decodable frame, so each datagram
        // parks exactly one typed error.
        fabric
            .inject_raw(0, 0, &[0xDE, 0xAD, i as u8])
            .expect("inject over loopback");
        // Inject-then-drain one at a time: UDP datagrams may be dropped
        // under burst even on loopback, and the test needs an exact count.
        assert!(
            poll_until(&mut bpb, || fabric.stats().frames_malformed_dropped == i + 1),
            "malformed datagram {i} must be counted, stats: {:?}",
            fabric.stats()
        );
    }
    let s = fabric.stats();
    assert_eq!(s.frames_malformed_dropped, INJECTED);
    assert_eq!(
        s.rx_errors_dropped,
        INJECTED - RING,
        "every eviction from the bounded error log must be counted"
    );
    // The ring keeps exactly the newest RING errors.
    let drained = std::iter::from_fn(|| fabric.take_rx_error()).count() as u64;
    assert_eq!(drained, RING, "log retains exactly its bound");
    assert_eq!(
        fabric.stats().rx_errors_dropped,
        INJECTED - RING,
        "draining the log does not change the overflow count"
    );
}

/// A datagram from a socket that is not the expected peer must be dropped
/// with a typed `UnknownSource` error — not decoded under a reconstructed
/// (and wrong) source MAC.
#[test]
fn udp_unknown_source_is_rejected_and_typed() {
    let fabric = UdpFabric::new(1).expect("bind loopback sockets");
    let (_bpa, mut bpb) = fabric.pair();
    let foreign = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind foreign socket");
    let foreign_addr = foreign.local_addr().unwrap();
    foreign
        .send_to(&[1, 2, 3], fabric.local_addr(1, 0))
        .expect("send from foreign socket");
    assert!(
        poll_until(&mut bpb, || fabric.stats().unknown_source_dropped == 1),
        "foreign datagram must be counted, stats: {:?}",
        fabric.stats()
    );
    match fabric.take_rx_error() {
        Some(UdpRxError::UnknownSource { node: 1, rail: 0, from }) => {
            assert_eq!(from, foreign_addr, "the error names the offender");
        }
        other => panic!("expected UnknownSource, got {other:?}"),
    }
    assert_eq!(fabric.stats().delivered, 0);
}

/// A flight-recorder post-mortem taken on a faulted wire path must carry
/// the transport's live state as context: the chaos interposer's tallies
/// and the UDP fabric's counters plus its parked receive-error log —
/// state that never flows through the event ring but explains it.
#[test]
fn flight_dump_carries_chaos_and_fabric_context() {
    let fabric = UdpFabric::new(1).expect("bind loopback sockets");
    let (bpa, mut bpb) = fabric.pair();
    let flight = FlightRecorder::enabled(FlightConfig::default());
    fabric.set_flight(&flight);
    let mut a = FaultBackplane::new(bpa, 0, &ChaosConfig::new(5).with_drop(1.0));
    a.set_flight(&flight);

    // One frame eaten by the interposer, one malformed datagram parked in
    // the fabric's error log: both must show up in the dump's context.
    let f = frame::Frame {
        src: frame::MacAddr::new(0, 0),
        dst: frame::MacAddr::new(1, 0),
        header: frame::FrameHeader {
            kind: frame::FrameKind::Data,
            flags: frame::FrameFlags::empty(),
            conn: 0,
            seq: 1,
            ack: 0,
            op_id: 0,
            op_total_len: 8,
            fence_floor: 0,
            remote_addr: 0x1000,
            aux: 0,
        },
        payload: Bytes::from(vec![0u8; 8]),
    };
    assert!(a.send(0, f), "chaos drop still reports accepted");
    fabric.inject_raw(0, 0, &[1, 2, 3]).expect("inject over loopback");
    assert!(
        poll_until(&mut bpb, || fabric.stats().frames_malformed_dropped == 1),
        "malformed datagram must be counted, stats: {:?}",
        fabric.stats()
    );

    let doc = flight.force_dump(123).expect("forced dump");
    let ctx = doc.get("context").expect("dump carries transport context");
    let chaos = ctx.get("chaos.node0").expect("chaos interposer context");
    assert_eq!(chaos.get("frames_seen").unwrap().as_u64(), Some(1));
    assert_eq!(chaos.get("dropped").unwrap().as_u64(), Some(1));
    let fab = ctx.get("udp_fabric").expect("fabric context");
    assert_eq!(fab.get("frames_malformed_dropped").unwrap().as_u64(), Some(1));
    let errors = fab.get("rx_errors").unwrap().items().unwrap();
    assert_eq!(errors.len(), 1, "the parked error log rides along");
    assert_eq!(errors[0].get("kind").unwrap().as_str(), Some("malformed"));
    // And the dump text renders/parses cleanly with the context embedded.
    let parsed = me_trace::Json::parse(&doc.render_pretty()).unwrap();
    assert_eq!(parsed, doc);
}

/// The advance idle loop honors its configured spin budget: with tiny
/// spin/yield budgets it must still return at (not far past) the deadline
/// by sleeping, and with nothing arriving it reaches the deadline.
#[test]
fn udp_advance_idle_loop_respects_deadline_with_spin_budget() {
    let cfg = UdpFabricConfig {
        spin_before_yield: 4,
        yields_before_sleep: 4,
        idle_sleep: std::time::Duration::from_micros(200),
    };
    let fabric = UdpFabric::new_with(1, cfg).expect("bind loopback sockets");
    let (mut bpa, _bpb) = fabric.pair();
    let start = std::time::Instant::now();
    let until = bpa.now_ns() + 5_000_000;
    let reached = bpa.advance(until);
    assert!(reached >= until, "advance reaches the deadline on a quiet fabric");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(4),
        "the idle loop must actually wait out the deadline, waited {elapsed:?}"
    );
}

#[test]
fn sim_and_udp_backends_agree_on_protocol_fingerprint() {
    let cfg = proto_config();

    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let (mut sa, mut sb) = SimBackplane::pair(&sim, &cluster);
    let sim_fp = run_fingerprint(&cfg.proto, 2, &mut sa, &mut sb);

    let fabric = UdpFabric::new(2).expect("bind loopback sockets");
    let (mut ua, mut ub) = fabric.pair();
    let udp_fp = run_fingerprint(&cfg.proto, 2, &mut ua, &mut ub);

    assert_eq!(
        sim_fp, udp_fp,
        "identical protocol code must move identical frames over both backends \
         (ops, bytes, frames, retransmits, dups)"
    );
    // And the run must be clean on both: no recovery machinery involved.
    assert_eq!(sim_fp.0[6], 0, "no retransmits on a loss-free fabric");
    assert_eq!(sim_fp.0[7], 0, "no duplicates on a loss-free fabric");
}
