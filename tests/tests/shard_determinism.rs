//! The sharded runtime's determinism contract, end to end through the full
//! MultiEdge protocol stack.
//!
//! For a fixed seed, the timing-independent outcome of a simulation —
//! operations completed, bytes delivered, unique frames received, receiver
//! memory contents — must be bit-identical no matter how the cluster is
//! partitioned or whether shards run threaded or cooperatively. The
//! fault-injection streams must agree as functions: the same `(stream,
//! attempt)` index always yields the same loss/corruption verdict.

use multiedge_bench::scale::{
    all_to_all_cell, decisions_consistent, incast_cell, lossy_determinism_cell, run_scale_cell,
};
use netsim::shard::ShardMode;

/// The headline gate: a lossy, fault-scripted cell (stationary loss +
/// corruption, link flaps, a NIC stall, a burst window) produces identical
/// timing-independent fingerprints at every shard count.
#[test]
fn lossy_cell_fingerprints_identical_across_shard_counts() {
    let cell = lossy_determinism_cell();
    let base = run_scale_cell(&cell, 1, ShardMode::Cooperative).unwrap();
    assert!(
        base.proto.retransmits_nack + base.proto.retransmits_rto > 0
            || base.net.drops_loss > 0,
        "cell must actually exercise loss for the gate to mean anything"
    );
    for shards in [2, 4] {
        let r = run_scale_cell(&cell, shards, ShardMode::Cooperative).unwrap();
        assert_eq!(
            base.fingerprint, r.fingerprint,
            "fingerprints diverge at {shards} shards"
        );
        decisions_consistent(&base.decisions, &r.decisions)
            .unwrap_or_else(|why| panic!("decision streams diverge at {shards} shards: {why}"));
    }
}

/// Fault-free traffic patterns hold the same contract.
#[test]
fn clean_cells_fingerprints_identical_across_shard_counts() {
    for cell in [all_to_all_cell(8, 2 << 10), incast_cell(8, 4 << 10)] {
        let base = run_scale_cell(&cell, 1, ShardMode::Cooperative).unwrap();
        for shards in [2, 4] {
            let r = run_scale_cell(&cell, shards, ShardMode::Cooperative).unwrap();
            assert_eq!(
                base.fingerprint, r.fingerprint,
                "cell '{}' diverges at {shards} shards",
                cell.name
            );
        }
    }
}

/// Worker threads change nothing: the threaded runtime is bit-identical to
/// the cooperative one — fingerprints, decision streams, and the
/// timing-dependent protocol counters too (same shard count, same rounds,
/// so even those must agree).
#[test]
fn threaded_matches_cooperative_exactly() {
    let cell = lossy_determinism_cell();
    for shards in [2, 4] {
        let coop = run_scale_cell(&cell, shards, ShardMode::Cooperative).unwrap();
        let thr = run_scale_cell(&cell, shards, ShardMode::Threaded).unwrap();
        assert!(thr.threaded && !coop.threaded);
        assert_eq!(coop.fingerprint, thr.fingerprint, "shards={shards}");
        assert_eq!(coop.decisions, thr.decisions, "shards={shards}");
        assert_eq!(coop.windows, thr.windows, "shards={shards}");
        assert_eq!(coop.events, thr.events, "shards={shards}");
        assert_eq!(coop.frames, thr.frames, "shards={shards}");
    }
}

/// Same seed, same shard count, run twice: everything identical, including
/// the raw decision logs.
#[test]
fn repeat_runs_are_bit_identical() {
    let cell = lossy_determinism_cell();
    let a = run_scale_cell(&cell, 2, ShardMode::Cooperative).unwrap();
    let b = run_scale_cell(&cell, 2, ShardMode::Cooperative).unwrap();
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.events, b.events);
}

/// A different seed actually changes the fault streams — the determinism
/// above is seed-pinning, not a degenerate constant.
#[test]
fn different_seed_changes_the_run() {
    let cell = lossy_determinism_cell();
    let mut other = lossy_determinism_cell();
    other.cfg.seed = cell.cfg.seed + 1;
    let a = run_scale_cell(&cell, 2, ShardMode::Cooperative).unwrap();
    let b = run_scale_cell(&other, 2, ShardMode::Cooperative).unwrap();
    assert_ne!(
        (a.fingerprint.clone(), a.decisions.clone()),
        (b.fingerprint, b.decisions),
        "seed must steer the fault streams"
    );
}
