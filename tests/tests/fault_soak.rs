//! Seeded fault-injection soak tests.
//!
//! Rails fail, flap, stall and burst-lose frames mid-transfer while the
//! protocol must keep delivering every byte exactly once, converge to the
//! surviving rails' goodput, and re-admit recovered rails — all of it
//! bit-for-bit reproducible from the config seed.

use integration_tests::{payload, rig};
use me_trace::{EventKind, FlightConfig, FlightDump, Json};
use multiedge::recvseq::{Admit, SeqTracker};
use multiedge::{OpFlags, RailState, SystemConfig};
use netsim::time::{ms, us, SimTime};
use netsim::{FaultPlan, FaultTarget, GilbertElliott};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A 2-rail connection loses rail 1 mid-transfer: goodput must converge to
/// the surviving rail instead of stalling, and after the link is restored
/// the rail must be probed back into the striping rotation. Every fault and
/// recovery transition must be visible as trace events that reconcile with
/// the protocol counters.
#[test]
fn rail_down_mid_transfer_converges_and_readmits() {
    let mut cfg = SystemConfig::two_link_1g_unordered(2).with_tracing(1 << 17);
    cfg.seed = 7;
    // Cooldown short enough that the probe lands after the 12 ms restore
    // while the transfer is still running.
    cfg.proto.rail_cooldown = ms(10);
    let (sim, cluster, eps, conns) = rig(cfg);
    // Network-level fault events (FaultInjected, FrameDrop) should land in
    // the same trace as the sender's protocol events.
    cluster.net.set_tracer(eps[0].tracer());
    let plan = FaultPlan::new().rail_down(ms(2), 1).rail_up(ms(12), 1);
    cluster.apply_fault_plan(&sim, &plan);

    let total: usize = 4 << 20;
    let data = payload(1, total);
    let expect = data.clone();
    let ep = eps[0].clone();
    let c01 = conns[0][1].unwrap();
    let c10 = conns[1][0].unwrap();
    let done = sim.spawn("writer", async move {
        // Stream in chunks so the transfer spans the whole fault timeline.
        let chunk = 256 << 10;
        let mut handles = Vec::new();
        for (i, part) in data.chunks(chunk).enumerate() {
            handles.push(
                ep.write_bytes(c01, (i * chunk) as u64, part.to_vec(), OpFlags::RELAXED)
                    .await,
            );
        }
        for h in handles {
            h.wait().await;
        }
    });

    // Phase boundaries matching the fault plan: before / during / after.
    sim.run_with_limit(Some(SimTime::ZERO + ms(2)));
    let before = eps[1].conn_stats(c10).data_bytes_recv;
    sim.run_with_limit(Some(SimTime::ZERO + ms(12)));
    let during = eps[1].conn_stats(c10).data_bytes_recv - before;
    sim.run().expect_quiescent();
    assert!(done.try_take().is_some(), "writer task must finish");

    // Exactly-once delivery and payload integrity.
    assert_eq!(eps[1].mem_read(0, total), expect);
    let tx = eps[0].conn_stats(c01);
    let rx = eps[1].conn_stats(c10);
    assert_eq!(
        tx.data_frames_sent, rx.data_frames_recv,
        "every unique frame must be delivered exactly once"
    );

    // Goodput through the outage: one 1-GbE rail moves ~1.25 MB in the
    // 10 ms fault window. Failover is not instant (losses must accumulate
    // to the death threshold first), but well over a third of the
    // single-rail budget must still get through — and it cannot exceed it.
    let single_rail_budget = 1.25e6;
    assert!(
        during as f64 > 0.35 * single_rail_budget,
        "goodput during outage too low: {during} bytes in 10 ms"
    );
    assert!(
        (during as f64) < 1.05 * single_rail_budget,
        "goodput during outage above single-rail capacity: {during}"
    );

    // The rail must have died and been re-admitted after the restore.
    assert!(tx.rail_down_events >= 1, "rail 1 never declared dead");
    assert!(tx.rail_up_events >= 1, "rail 1 never re-admitted");
    assert!(
        eps[0]
            .rail_states(c01)
            .iter()
            .all(|s| *s == RailState::Healthy),
        "all rails healthy at the end: {:?}",
        eps[0].rail_states(c01)
    );

    // Trace events reconcile with the counters.
    let snap = eps[0].tracer().snapshot().expect("tracing enabled");
    assert_eq!(snap.overwritten, 0, "trace ring must hold the whole run");
    assert_eq!(
        snap.count_events(|k| matches!(k, EventKind::RailDown { .. })),
        tx.rail_down_events
    );
    assert_eq!(
        snap.count_events(|k| matches!(k, EventKind::RailUp { .. })),
        tx.rail_up_events
    );
    // A `Rail` target resolves to one NIC per node, and the injection is
    // traced per NIC: 2 plan events × 2 nodes.
    assert_eq!(
        snap.count_events(|k| matches!(k, EventKind::FaultInjected { .. })),
        2 * plan.events().len() as u64
    );
    assert_eq!(
        snap.count_events(|k| matches!(k, EventKind::RtoBackoff { .. })),
        tx.retransmits_rto
    );
}

/// The adaptive RTO must learn the path and detect a total outage much
/// faster than the paper's fixed 10 ms timer, then back off exponentially
/// while the outage lasts (visible in `rto_backoff_max`).
#[test]
fn adaptive_rto_learns_path_and_backs_off_during_outage() {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.seed = 3;
    let (sim, cluster, eps, conns) = rig(cfg);
    // Both rails die at 5 ms and come back at 25 ms: total outage.
    let plan = FaultPlan::new()
        .rail_down(ms(5), 0)
        .rail_down(ms(5), 1)
        .rail_up(ms(25), 0)
        .rail_up(ms(25), 1);
    cluster.apply_fault_plan(&sim, &plan);

    let total: usize = 2 << 20;
    let data = payload(9, total);
    let expect = data.clone();
    let ep = eps[0].clone();
    let c01 = conns[0][1].unwrap();
    let done = sim.spawn("writer", async move {
        let chunk = 128 << 10;
        let mut handles = Vec::new();
        for (i, part) in data.chunks(chunk).enumerate() {
            handles.push(
                ep.write_bytes(c01, (i * chunk) as u64, part.to_vec(), OpFlags::RELAXED)
                    .await,
            );
        }
        for h in handles {
            h.wait().await;
        }
    });
    sim.run_with_limit(Some(SimTime::ZERO + ms(5)));
    // By the time the outage hits, RTT samples must have pulled the timer
    // far below the 10 ms initial value.
    let learned = eps[0].current_rto(c01);
    assert!(
        learned < ms(5),
        "adaptive RTO should have adapted below the initial 10 ms: {learned:?}"
    );
    assert!(eps[0].srtt(c01).is_some(), "RTT samples must have arrived");

    sim.run().expect_quiescent();
    assert!(done.try_take().is_some(), "writer task must finish");
    assert_eq!(eps[1].mem_read(0, total), expect);
    let tx = eps[0].conn_stats(c01);
    assert!(
        tx.rto_backoff_max >= 1,
        "a 20 ms total outage must force exponential backoff (max {})",
        tx.rto_backoff_max
    );
    assert!(tx.retransmits_rto >= 1);
}

/// Build a 2-node cluster with four rails.
fn four_rail_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.name = "4Lu-1G".to_string();
    cfg.rails = 4;
    cfg.seed = seed;
    cfg.proto.rail_cooldown = ms(5);
    cfg
}

/// Generate a randomized but seed-deterministic fault schedule over a
/// 4-rail, 2-node cluster: link outages, flaps, NIC stalls and loss bursts,
/// every outage paired with a restore so the run can quiesce.
fn random_plan(rng: &mut SmallRng) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for rail in 0..4usize {
        if rng.gen_bool(0.7) {
            let node = rng.gen_range(0..2usize);
            let down = ms(1 + rng.gen_range(0..10u64));
            let dur = ms(2 + rng.gen_range(0..8u64));
            plan = plan
                .link_down(down, node, rail)
                .link_up(down + dur, node, rail);
        }
        if rng.gen_bool(0.4) {
            let node = rng.gen_range(0..2usize);
            plan = plan.flap_link(
                ms(rng.gen_range(1..8u64)),
                node,
                rail,
                us(200 + rng.gen_range(0..800u64)),
                us(300 + rng.gen_range(0..900u64)),
                2,
            );
        }
        if rng.gen_bool(0.5) {
            let node = rng.gen_range(0..2usize);
            plan = plan.nic_stall(
                ms(rng.gen_range(1..12u64)),
                node,
                rail,
                us(100 + rng.gen_range(0..2000u64)),
            );
        }
        if rng.gen_bool(0.5) {
            let target = FaultTarget::Rail { rail };
            let at = ms(rng.gen_range(0..6u64));
            plan = plan
                .burst(at, target, GilbertElliott::bursty_loss(0.05, 0.25, 0.5))
                .clear_burst(at + ms(2 + rng.gen_range(0..8u64)), target);
        }
    }
    plan
}

/// Soak: randomized seeded fault schedules over a 4-rail topology while a
/// mixed, partly fenced workload runs. Every byte must land exactly once,
/// fence ordering must hold, and the run must be quiescent at the end.
#[test]
fn randomized_fault_schedules_deliver_exactly_once() {
    for seed in [11u64, 23, 47] {
        let (sim, cluster, eps, conns) = rig(four_rail_cfg(seed));
        let mut frng = SmallRng::seed_from_u64(seed ^ 0xFA17);
        cluster.apply_fault_plan(&sim, &random_plan(&mut frng));

        let c01 = conns[0][1].unwrap();
        let c10 = conns[1][0].unwrap();
        let nops = 24usize;
        let region = 64 << 10;
        let mut expects: Vec<(u64, Vec<u8>)> = Vec::new();
        for i in 0..nops {
            expects.push((
                (i * region) as u64,
                payload(seed.wrapping_add(i as u64), region / 2 + i * 512),
            ));
        }
        // Fence-ordering check: two overlapping writes to one region where
        // the second carries a backward fence — it must apply last, no
        // matter how the rails reorder or retransmit the fragments.
        let clobber_addr = (nops * region) as u64;
        let first = payload(seed ^ 1, 40_000);
        let last = payload(seed ^ 2, 40_000);
        expects.push((clobber_addr, last.clone()));

        let ep = eps[0].clone();
        let ops = expects.clone();
        let done = sim.spawn("writer", async move {
            let mut handles = Vec::new();
            for (addr, data) in ops.iter().take(nops) {
                handles.push(
                    ep.write_bytes(c01, *addr, data.clone(), OpFlags::RELAXED)
                        .await,
                );
            }
            handles.push(
                ep.write_bytes(c01, clobber_addr, first, OpFlags::RELAXED)
                    .await,
            );
            handles.push(
                ep.write_bytes(
                    c01,
                    clobber_addr,
                    last,
                    OpFlags::RELAXED.with_fence_backward(),
                )
                .await,
            );
            for h in handles {
                h.wait().await;
            }
        });
        sim.run().expect_quiescent();
        assert!(done.try_take().is_some(), "seed {seed}: writer must finish");

        for (addr, data) in &expects {
            assert_eq!(
                &eps[1].mem_read(*addr, data.len()),
                data,
                "seed {seed}: payload at {addr:#x} corrupted"
            );
        }
        let tx = eps[0].conn_stats(c01);
        let rx = eps[1].conn_stats(c10);
        assert_eq!(
            tx.data_frames_sent, rx.data_frames_recv,
            "seed {seed}: exactly-once delivery violated"
        );

        // Determinism: the same seed must reproduce the same fault pattern
        // and therefore the same protocol-level loss accounting.
        let (sim2, cluster2, eps2, conns2) = rig(four_rail_cfg(seed));
        let mut frng2 = SmallRng::seed_from_u64(seed ^ 0xFA17);
        cluster2.apply_fault_plan(&sim2, &random_plan(&mut frng2));
        let ep2 = eps2[0].clone();
        let c01b = conns2[0][1].unwrap();
        let ops2 = expects.clone();
        let first2 = payload(seed ^ 1, 40_000);
        let last2 = payload(seed ^ 2, 40_000);
        sim2.spawn("writer", async move {
            let mut handles = Vec::new();
            for (addr, data) in ops2.iter().take(nops) {
                handles.push(
                    ep2.write_bytes(c01b, *addr, data.clone(), OpFlags::RELAXED)
                        .await,
                );
            }
            handles.push(
                ep2.write_bytes(c01b, clobber_addr, first2, OpFlags::RELAXED)
                    .await,
            );
            handles.push(
                ep2.write_bytes(
                    c01b,
                    clobber_addr,
                    last2,
                    OpFlags::RELAXED.with_fence_backward(),
                )
                .await,
            );
            for h in handles {
                h.wait().await;
            }
        });
        sim2.run().expect_quiescent();
        let tx2 = eps2[0].conn_stats(c01b);
        assert_eq!(
            (tx.retransmits_nack, tx.retransmits_rto, tx.rail_down_events),
            (
                tx2.retransmits_nack,
                tx2.retransmits_rto,
                tx2.rail_down_events
            ),
            "seed {seed}: fault schedule not reproducible"
        );
    }
}

/// A scratch dump dir under the target tmpdir, cleaned per scenario.
fn flight_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arm the flight recorder (with exactly one trigger class enabled), stream
/// a chunked transfer through `plan`, verify delivery, and return node 0's
/// retained post-mortem dumps.
fn soak_dumps(
    cfg: SystemConfig,
    fc: FlightConfig,
    plan: FaultPlan,
    total: usize,
) -> Vec<FlightDump> {
    let cfg = cfg.with_spans(1 << 13).with_flight(fc);
    let (sim, cluster, eps, conns) = rig(cfg);
    cluster.apply_fault_plan(&sim, &plan);
    let c01 = conns[0][1].unwrap();
    let data = payload(5, total);
    let expect = data.clone();
    let ep = eps[0].clone();
    let done = sim.spawn("flight-writer", async move {
        let chunk = 128 << 10;
        let mut handles = Vec::new();
        for (i, part) in data.chunks(chunk).enumerate() {
            handles.push(
                ep.write_bytes(c01, (i * chunk) as u64, part.to_vec(), OpFlags::RELAXED)
                    .await,
            );
        }
        for h in handles {
            h.wait().await;
        }
    });
    sim.run().expect_quiescent();
    assert!(done.try_take().is_some(), "writer must finish");
    assert_eq!(eps[1].mem_read(0, total), expect, "payload integrity");
    eps[0].flight_recorder().dumps()
}

/// Artifact checks shared by every outage class: a dump fired with the
/// expected trigger, its artifact file was written, parses back to the
/// retained document, is schema-stamped, and carries a non-empty timeline.
fn assert_dump_artifact(class: &str, dumps: &[FlightDump]) {
    assert!(
        !dumps.is_empty(),
        "{class}: outage produced no post-mortem dump"
    );
    let dump = &dumps[0];
    assert_eq!(dump.trigger, class, "wrong trigger class");
    let path = dump.path.as_ref().expect("dump_dir set => artifact written");
    let text = std::fs::read_to_string(path).expect("artifact readable");
    let parsed = Json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(parsed, dump.json, "{class}: artifact diverges from dump");
    me_trace::require_schema(&parsed).expect("dump artifacts are schema-stamped");
    assert!(
        parsed
            .get("events")
            .and_then(|e| e.items())
            .is_some_and(|e| !e.is_empty()),
        "{class}: dump carries no timeline"
    );
}

/// Outage class 1: rail death. Only the rail-death trigger is armed, so the
/// dump the outage produces is attributable to exactly that class.
#[test]
fn rail_death_outage_class_dumps_post_mortem() {
    let fc = FlightConfig {
        rto_backoff_trigger: 0,
        fence_stall_trigger_ns: 0,
        dump_dir: Some(flight_dir("soak_fr_rail_death").to_string_lossy().into_owned()),
        ..FlightConfig::default()
    };
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.seed = 21;
    let plan = FaultPlan::new().rail_down(ms(2), 1).rail_up(ms(40), 1);
    let dumps = soak_dumps(cfg, fc, plan, 3 << 20);
    assert_dump_artifact("rail_death", &dumps);
}

/// Outage class 2: RTO exponential backoff. Both rails die so every
/// retransmission times out and the backoff exponent climbs past the
/// trigger; rail-death dumps are disabled to isolate the class.
#[test]
fn rto_backoff_outage_class_dumps_post_mortem() {
    let fc = FlightConfig {
        rto_backoff_trigger: 2,
        fence_stall_trigger_ns: 0,
        dump_on_rail_death: false,
        dump_dir: Some(flight_dir("soak_fr_rto_backoff").to_string_lossy().into_owned()),
        ..FlightConfig::default()
    };
    let mut cfg = SystemConfig::two_link_1g_unordered(2);
    cfg.seed = 22;
    let plan = FaultPlan::new()
        .rail_down(ms(3), 0)
        .rail_down(ms(3), 1)
        .rail_up(ms(60), 0)
        .rail_up(ms(60), 1);
    let dumps = soak_dumps(cfg, fc, plan, 2 << 20);
    assert_dump_artifact("rto_backoff", &dumps);
    // With the other triggers disarmed, every retained dump is this class.
    assert!(dumps.iter().all(|d| d.trigger == "rto_backoff"));
}

/// Outage class 3: fence stall. Ordered mode holds later fragments back
/// until retransmission fills the seq gap the dead rail left, so releases
/// stall well past the 1 ms trigger.
#[test]
fn fence_stall_outage_class_dumps_post_mortem() {
    let fc = FlightConfig {
        rto_backoff_trigger: 0,
        fence_stall_trigger_ns: 1_000_000,
        dump_on_rail_death: false,
        dump_dir: Some(flight_dir("soak_fr_fence_stall").to_string_lossy().into_owned()),
        ..FlightConfig::default()
    };
    let mut cfg = SystemConfig::two_link_1g(2);
    cfg.seed = 23;
    let plan = FaultPlan::new().rail_down(ms(2), 1).rail_up(ms(30), 1);
    let dumps = soak_dumps(cfg, fc, plan, 2 << 20);
    assert_dump_artifact("fence_stall", &dumps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The receive-side gap tracker must admit every sequence exactly once
    /// under arbitrary duplication and reordering (the frame patterns that
    /// retransmission over flapping rails produces), and its gap bookkeeping
    /// must stay consistent at every step.
    #[test]
    fn seq_tracker_exactly_once_under_dup_and_reorder(
        n in 1u64..160,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Every sequence delivered 1–3 times (original + retransmits)…
        let mut deliveries: Vec<u64> = Vec::new();
        for s in 0..n {
            for _ in 0..1 + rng.gen_range(0..3u32) {
                deliveries.push(s);
            }
        }
        // …in a fully shuffled order (Fisher–Yates).
        for i in (1..deliveries.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            deliveries.swap(i, j);
        }

        let mut t = SeqTracker::new();
        let mut admitted = vec![0u32; n as usize];
        let mut dups = 0u64;
        for &s in &deliveries {
            match t.admit(s) {
                Admit::New { .. } => admitted[s as usize] += 1,
                Admit::Duplicate => dups += 1,
            }
            prop_assert!(t.cumulative() <= t.frontier());
            let missing = t.missing_ranges();
            prop_assert_eq!(missing.is_empty(), !t.has_gap());
            for &(from, to) in &missing {
                prop_assert!(from < to, "empty missing range");
                prop_assert!(to <= t.frontier());
            }
        }
        prop_assert!(admitted.iter().all(|&c| c == 1), "a seq was not admitted exactly once");
        prop_assert_eq!(t.cumulative(), n);
        prop_assert!(!t.has_gap());
        prop_assert_eq!(dups, deliveries.len() as u64 - n);
        prop_assert_eq!(t.ooo_held(), 0);
    }
}
