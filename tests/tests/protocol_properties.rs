//! Property-based tests of the protocol's pure state machines.

use frame::{decode_frame, encode_frame, Frame, FrameFlags, FrameHeader, FrameKind, MacAddr, NackRanges};
use multiedge::order::{FragMeta, OpOrdering};
use multiedge::recvseq::{Admit, SeqTracker};
use multiedge::seqspace::{from_wire, to_wire};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Data),
        Just(FrameKind::Ack),
        Just(FrameKind::Nack),
        Just(FrameKind::ReadRequest),
        Just(FrameKind::ReadResponse),
        Just(FrameKind::Connect),
        Just(FrameKind::ConnectAck),
    ]
}

proptest! {
    /// Codec round-trip for arbitrary headers and payloads.
    #[test]
    fn frame_codec_round_trips(
        kind in arb_kind(),
        flags in 0u16..64,
        conn in any::<u32>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        op_id in any::<u32>(),
        op_total in any::<u32>(),
        floor in any::<u32>(),
        addr in any::<u64>(),
        aux in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..frame::MAX_PAYLOAD),
    ) {
        let f = Frame {
            src: MacAddr::new(1, 0),
            dst: MacAddr::new(2, 0),
            header: FrameHeader {
                kind,
                flags: FrameFlags::from_bits(flags),
                conn,
                seq,
                ack,
                op_id,
                op_total_len: op_total,
                fence_floor: floor,
                remote_addr: addr,
                aux,
            },
            payload: bytes::Bytes::from(payload),
        };
        let wire = encode_frame(&f);
        prop_assert_eq!(decode_frame(f.src, f.dst, &wire).unwrap(), f);
    }

    /// Any single-bit corruption of the wire image is detected.
    #[test]
    fn corruption_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        flip_bit in 0usize..128,
    ) {
        let f = Frame {
            src: MacAddr::new(0, 0),
            dst: MacAddr::new(1, 0),
            header: FrameHeader::default(),
            payload: bytes::Bytes::from(payload),
        };
        let mut wire = encode_frame(&f);
        let bit = flip_bit % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        // Either rejected outright, or decodes to something != f — never a
        // silent wrong-but-equal accept.
        if let Ok(g) = decode_frame(f.src, f.dst, &wire) {
            prop_assert_ne!(g, f);
        }
    }

    /// NACK range codec round-trips.
    #[test]
    fn nack_ranges_round_trip(ranges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..64)) {
        let n = NackRanges { ranges: ranges.clone() };
        prop_assert_eq!(NackRanges::decode(&n.encode()).ranges, ranges);
    }

    /// Wire sequence reconstruction is exact within a ±2^31 window.
    #[test]
    fn seqspace_reconstructs(reference in 0u64..u64::MAX / 2, delta in -(1i64 << 30)..(1i64 << 30)) {
        let seq = reference.saturating_add_signed(delta);
        prop_assert_eq!(from_wire(reference, to_wire(seq)), seq);
    }

    /// SeqTracker agrees with a naive set-based model under arbitrary
    /// arrival orders with duplicates.
    #[test]
    fn seq_tracker_matches_model(mut seqs in proptest::collection::vec(0u64..200, 1..400)) {
        let mut t = SeqTracker::new();
        let mut seen = std::collections::BTreeSet::new();
        for &s in &seqs {
            let admit = t.admit(s);
            let fresh = seen.insert(s);
            prop_assert_eq!(matches!(admit, Admit::New{..}), fresh, "seq {}", s);
            // Model: cumulative = smallest missing.
            let mut cum = 0;
            while seen.contains(&cum) {
                cum += 1;
            }
            prop_assert_eq!(t.cumulative(), cum);
            let frontier = seen.iter().next_back().map_or(0, |m| m + 1);
            prop_assert_eq!(t.frontier(), frontier);
            // Missing ranges expand exactly to the missing set below frontier.
            let missing: Vec<u64> = (cum..frontier).filter(|x| !seen.contains(x)).collect();
            let expanded: Vec<u64> = t
                .missing_ranges()
                .iter()
                .flat_map(|&(a, b)| a..b)
                .collect();
            prop_assert_eq!(expanded, missing);
        }
        seqs.sort_unstable();
    }

    /// The reorder buffer delivers every fragment exactly once, and never
    /// violates a fence: when a backward-fenced fragment of op i is
    /// applied, all ops < i are complete; when any fragment with fence
    /// floor f is applied, all ops < f are complete.
    #[test]
    fn op_ordering_respects_fences(
        ops in proptest::collection::vec((1u64..4, any::<bool>(), any::<bool>()), 1..20),
        order_seed in any::<u64>(),
    ) {
        // Build fragment list: op i has ops[i].0 fragments of 1 byte; .1 is
        // backward fence, .2 is forward fence.
        let mut floor = 0u64;
        let mut frags: Vec<FragMeta> = Vec::new();
        for (i, &(nfrag, bwd, fwd)) in ops.iter().enumerate() {
            for _ in 0..nfrag {
                frags.push(FragMeta {
                    op_id: i as u64,
                    op_total: nfrag,
                    fence_floor: floor,
                    fence_backward: bwd,
                    len: 1,
                });
            }
            if fwd {
                floor = i as u64 + 1;
            }
        }
        // Deterministic shuffle.
        let mut rng = order_seed;
        for i in (1..frags.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }
        let mut o: OpOrdering<u64> = OpOrdering::new();
        let mut applied_count: std::collections::HashMap<u64, u64> = Default::default();
        let mut completed: std::collections::BTreeSet<u64> = Default::default();
        let total = frags.len();
        let mut applied_total = 0usize;
        for f in frags {
            let rel = o.offer(f, f.op_id);
            for (m, _) in &rel.apply {
                applied_total += 1;
                *applied_count.entry(m.op_id).or_default() += 1;
                // Fence floor invariant.
                for e in 0..m.fence_floor {
                    prop_assert!(completed.contains(&e) || {
                        // e may complete within this same release batch
                        // before m; check final set instead below.
                        rel.completed.contains(&e)
                    }, "floor violated: op {} applied before {}", m.op_id, e);
                }
            }
            for c in rel.completed {
                completed.insert(c);
            }
        }
        prop_assert_eq!(applied_total, total, "every fragment applied once");
        for (i, &(nfrag, _, _)) in ops.iter().enumerate() {
            prop_assert_eq!(applied_count[&(i as u64)], nfrag);
            prop_assert!(completed.contains(&(i as u64)));
        }
    }

    /// Diff/patch round-trip: applying the exact diffs of two writers with
    /// disjoint modifications reconstructs both at the home.
    #[test]
    fn diff_patch_round_trip(
        base in proptest::collection::vec(any::<u8>(), 64..512),
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..64),
    ) {
        let twin = base.clone();
        let mut cur = base.clone();
        for &(at, v) in &edits {
            let i = at % cur.len();
            cur[i] = v;
        }
        let runs = dsm::diff::diff_runs(&twin, &cur);
        let mut home = base.clone();
        dsm::diff::apply_runs(&mut home, &cur, &runs);
        prop_assert_eq!(home, cur);
    }

    /// Page-range merge/expand round-trips for arbitrary page sets.
    #[test]
    fn page_ranges_round_trip(pages in proptest::collection::btree_set(0u64..10_000, 0..200)) {
        let v: Vec<u64> = pages.iter().copied().collect();
        let ranges = dsm::msg::merge_pages(v.clone());
        let back: Vec<u64> = dsm::msg::expand_ranges(&ranges).collect();
        prop_assert_eq!(back, v);
    }
}

/// One step of the random tx-window workload driven against both the ring
/// and the naive map reference in `tx_ring_matches_map_reference`.
#[derive(Debug, Clone, Copy)]
enum TxOp {
    /// Send the next frame if the window allows.
    Send,
    /// Advance the cumulative ack by the given number of frames.
    Ack(u8),
    /// Mark the in-flight frame at this window offset retransmitted (a NACK
    /// handler resending it on a new rail).
    Retransmit(u8, u8),
    /// Look up the frame at this window offset (may be stale/missing).
    Query(u8),
}

fn arb_tx_op() -> impl Strategy<Value = TxOp> {
    // The vendored prop_oneof has no weight syntax; repeat arms to bias
    // toward sends so windows actually fill.
    prop_oneof![
        Just(TxOp::Send),
        Just(TxOp::Send),
        Just(TxOp::Send),
        Just(TxOp::Send),
        (1u8..16).prop_map(TxOp::Ack),
        (any::<u8>(), 0u8..4).prop_map(|(k, r)| TxOp::Retransmit(k, r)),
        any::<u8>().prop_map(TxOp::Query),
    ]
}

proptest! {
    /// The ring-based sender state (`multiedge::ring::TxRing`) behaves
    /// exactly like a naive seq-keyed map through random send / ack /
    /// retransmit sequences — including windows that straddle the 32-bit
    /// wire wrap, where every in-flight sequence must still round-trip
    /// through its truncated wire form.
    #[test]
    fn tx_ring_matches_map_reference(
        // Bias half the cases onto the 2^32 wire-wrap boundary.
        base in prop_oneof![
            0u64..1024,
            ((1u64 << 32) - 512)..((1u64 << 32) + 512),
        ],
        ops in proptest::collection::vec(arb_tx_op(), 1..400),
    ) {
        use multiedge::ring::{TxRing, TxSlot};
        use std::collections::HashMap;

        const WINDOW: usize = 32;
        let mut ring = TxRing::with_window(WINDOW);
        // Reference model: plain map from seq to (rail, retransmitted).
        let mut model: HashMap<u64, (usize, bool)> = HashMap::new();

        let mut acked = base;
        let mut next_seq = base;
        for op in ops {
            match op {
                TxOp::Send => {
                    if (next_seq - acked) < WINDOW as u64 {
                        ring.insert(TxSlot {
                            seq: next_seq,
                            rail: 0,
                            sent_at: netsim::SimTime::ZERO,
                            retransmitted: false,
                            frame: Frame {
                                src: MacAddr::new(0, 0),
                                dst: MacAddr::new(1, 0),
                                header: FrameHeader {
                                    seq: to_wire(next_seq),
                                    ..FrameHeader::default()
                                },
                                payload: bytes::Bytes::new(),
                            },
                        });
                        model.insert(next_seq, (0, false));
                        next_seq += 1;
                    }
                }
                TxOp::Ack(n) => {
                    let new_acked = (acked + n as u64).min(next_seq);
                    while acked < new_acked {
                        let from_ring = ring.remove(acked).map(|s| (s.rail, s.retransmitted));
                        let from_model = model.remove(&acked);
                        prop_assert_eq!(from_ring, from_model, "ack removal at {}", acked);
                        acked += 1;
                    }
                }
                TxOp::Retransmit(k, rail) => {
                    let seq = acked + (k as u64 % WINDOW as u64);
                    let rail = rail as usize;
                    if let Some(s) = ring.get_mut(seq) {
                        s.retransmitted = true;
                        s.rail = rail;
                    }
                    if let Some(m) = model.get_mut(&seq) {
                        m.1 = true;
                        m.0 = rail;
                    }
                }
                TxOp::Query(k) => {
                    // Offset past the window probes stale / never-sent seqs.
                    let seq = (acked + k as u64).max(base);
                    prop_assert_eq!(
                        ring.get(seq).map(|s| (s.rail, s.retransmitted)),
                        model.get(&seq).copied(),
                        "lookup at {}", seq
                    );
                }
            }
        }

        prop_assert_eq!(ring.len(), model.len());
        for seq in acked..next_seq {
            prop_assert_eq!(
                ring.get(seq).map(|s| (s.rail, s.retransmitted)),
                model.get(&seq).copied(),
                "final state at {}", seq
            );
            // The wrap-sensitive part: the retained frame's 32-bit wire seq
            // must reconstruct to the full sequence relative to the ack.
            let s = ring.get(seq).expect("in flight");
            prop_assert_eq!(from_wire(acked, s.frame.header.seq), seq);
        }
    }

    /// The ring-based receiver gap state (`multiedge::ring::GapRing`)
    /// matches a naive map reference through random out-of-order delivery:
    /// same entries, same first-seen/last-NACK state, same live size —
    /// which stays window-bounded — across wire wrap.
    #[test]
    fn gap_ring_matches_map_reference(
        base in prop_oneof![
            0u64..1024,
            ((1u64 << 32) - 512)..((1u64 << 32) + 512),
        ],
        // Each step delivers the frame at `offset` into the receive window,
        // then runs a NACK tick every few steps.
        offsets in proptest::collection::vec(0u8..32, 1..300),
    ) {
        use multiedge::ring::GapRing;
        use std::collections::HashMap;

        const WINDOW: usize = 32;
        let mut seqs = SeqTracker::with_window(WINDOW);
        let mut ring = GapRing::with_window(WINDOW);
        // Reference model: gap start -> (first_seen, last_nack).
        let mut model: HashMap<u64, (netsim::SimTime, Option<netsim::SimTime>)> =
            HashMap::new();
        // SeqTracker counts from 0; shift by `base` when exercising the
        // wire round-trip below.
        let mut scratch = Vec::new();
        let mut now = netsim::SimTime::ZERO;

        for (step, off) in offsets.into_iter().enumerate() {
            now += netsim::time::us(1);
            let seq = seqs.cumulative() + off as u64;
            // Wire round-trip sanity at the wrap: the shifted sequence
            // survives truncation relative to the shifted cumulative.
            prop_assert_eq!(
                from_wire(base + seqs.cumulative(), to_wire(base + seq)),
                base + seq
            );
            match seqs.admit(seq) {
                Admit::New { .. } => {}
                Admit::Duplicate => continue,
            }
            if step % 3 == 0 {
                // NACK tick: record every currently-missing gap start, then
                // purge what the cumulative ack has passed.
                seqs.missing_ranges_into(&mut scratch);
                for &(start, _) in &scratch {
                    let e = ring.entry(start, now);
                    let m = model.entry(start).or_insert((now, None));
                    prop_assert_eq!(e.first_seen, m.0, "first_seen at {}", start);
                    prop_assert_eq!(e.last_nack, m.1, "last_nack at {}", start);
                    e.last_nack = Some(now);
                    m.1 = Some(now);
                }
                let cum = seqs.cumulative();
                ring.purge_below(cum);
                model.retain(|&s, _| s >= cum);
                prop_assert_eq!(ring.len(), model.len(), "live gaps after purge");
                prop_assert!(ring.len() <= WINDOW, "gap state exceeds window");
            }
        }

        let cum = seqs.cumulative();
        ring.purge_below(cum);
        model.retain(|&s, _| s >= cum);
        prop_assert_eq!(ring.len(), model.len());
        for (&s, &(first, last)) in &model {
            let g = ring.get(s).expect("model entry live in ring");
            prop_assert_eq!(g.first_seen, first);
            prop_assert_eq!(g.last_nack, last);
        }
    }
}
