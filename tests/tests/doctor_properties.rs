//! Property tests for the streaming anomaly detectors behind the health
//! plane ([`me_trace::detect`]): on boring inputs — constant series,
//! bounded i.i.d. noise — no detector ever alarms at the default
//! thresholds; a level step at least as large as the alarm bound is caught
//! on the very next reading; a slow ramp that the z-score provably never
//! flags still drives the CUSUM over its threshold; and the full monitor
//! is a pure function of its row stream (two runs render byte-identical
//! reports).

use me_trace::{Burst, Cusum, HealthConfig, HealthMonitor, SourceKind, Zscore};
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so "white noise" means
/// genuinely i.i.d. draws from a seed, not an adversarially chosen
/// sequence (a bounded but *persistent* offset is a real level shift and
/// is supposed to alarm).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

proptest! {
    /// A constant series is the quietest possible input: the z-score and
    /// CUSUM never alarm at any level, and the burst rule fires at most
    /// on the very first reading (a storm already present at startup is
    /// an alarm by design) — never once the rate is established. An
    /// all-zero series never fires at all.
    #[test]
    fn constant_series_never_alarms(level in 0u64..1_000_000, len in 2usize..300) {
        let cfg = HealthConfig::default();
        let (mut z, mut c, mut b) = (Zscore::default(), Cusum::default(), Burst::default());
        for i in 0..len {
            let zs = z.observe(level as f64, &cfg);
            let cs = c.observe(level as f64, &cfg);
            let bs = b.observe(level, &cfg);
            prop_assert!(zs.abs() < cfg.z_threshold, "z alarmed on constant at row {i}: {zs}");
            prop_assert!(cs < cfg.cusum_threshold, "cusum alarmed on constant at row {i}: {cs}");
            if i > 0 || level == 0 {
                prop_assert!(bs == 0.0, "burst fired on established constant rate at row {i}: {bs}");
            }
        }
    }

    /// Bounded i.i.d. noise stays silent: draws within ±2% of a positive
    /// mean sit inside both detectors' relative σ floors (z floor 50% of
    /// mean, CUSUM floor 5% plus 0.5 slack per step), so neither the
    /// level-shift nor the drift detector ever alarms, at any scale.
    #[test]
    fn white_noise_never_alarms(
        mean in 100u64..1_000_000,
        seed in any::<u64>(),
        len in 10usize..400,
    ) {
        let cfg = HealthConfig::default();
        let mut rng = SplitMix(seed);
        let m = mean as f64;
        let (mut z, mut c) = (Zscore::default(), Cusum::default());
        for i in 0..len {
            let x = rng.range(0.98 * m, 1.02 * m);
            let zs = z.observe(x, &cfg);
            let cs = c.observe(x, &cfg);
            prop_assert!(zs.abs() < cfg.z_threshold, "z alarmed on noise at row {i}: {zs}");
            prop_assert!(cs < cfg.cusum_threshold, "cusum alarmed on noise at row {i}: {cs}");
        }
    }

    /// Guaranteed detection: after any warm constant baseline, a step of
    /// at least `z_threshold × σ-floor` above the level alarms on the very
    /// next reading — one interval of detection latency, no exceptions.
    #[test]
    fn level_step_alarms_on_next_reading(
        level in 0u64..100_000,
        warm in 10u32..80,
        extra in 1u64..1_000,
    ) {
        let cfg = HealthConfig::default();
        let m = level as f64;
        let floor = cfg.sigma_floor_abs.max(cfg.sigma_floor_rel * m);
        let step = m + cfg.z_threshold * floor + extra as f64;
        let mut z = Zscore::default();
        for i in 0..warm.max(cfg.warmup + 1) {
            let s = z.observe(m, &cfg);
            prop_assert!(s.abs() < cfg.z_threshold, "alarmed before the step at row {i}");
        }
        let s = z.observe(step, &cfg);
        prop_assert!(
            s >= cfg.z_threshold,
            "step {step} over baseline {m} scored only {s}"
        );
    }

    /// The division of labor the module promises: a slow upward ramp whose
    /// per-reading excursion never reaches the z-threshold (the fast EWMA
    /// drags its own reference along) still accumulates in the CUSUM —
    /// slow reference, per-step slack notwithstanding — and crosses its
    /// threshold before the ramp ends.
    #[test]
    fn cusum_catches_drift_the_zscore_misses(
        base in 500u64..50_000,
        slope_permille in 5u64..20,
    ) {
        let cfg = HealthConfig::default();
        let m = base as f64;
        let d = m * slope_permille as f64 / 1000.0;
        let (mut z, mut c) = (Zscore::default(), Cusum::default());
        for _ in 0..=cfg.warmup {
            z.observe(m, &cfg);
            c.observe(m, &cfg);
        }
        let mut cusum_alarmed = false;
        let mut x = m;
        for i in 0..150 {
            x += d;
            let zs = z.observe(x, &cfg);
            prop_assert!(
                zs.abs() < cfg.z_threshold,
                "ramp row {i} tripped the z-score ({zs}); the drift is not slow"
            );
            if c.observe(x, &cfg) >= cfg.cusum_threshold {
                cusum_alarmed = true;
                break;
            }
        }
        prop_assert!(cusum_alarmed, "a {slope_permille}‰/interval ramp never tripped the CUSUM");
    }

    /// The burst rule on a quiet-on-healthy counter: any run of zero
    /// deltas followed by a delta at or above the floor fires exactly at
    /// the storm row.
    #[test]
    fn burst_fires_on_first_storm_after_quiet(
        quiet in 1usize..200,
        storm in 4u64..100_000,
    ) {
        let cfg = HealthConfig::default();
        let storm = storm.max(cfg.burst_floor);
        let mut b = Burst::default();
        for i in 0..quiet {
            prop_assert!(b.observe(0, &cfg) == 0.0, "burst fired on quiet row {i}");
        }
        prop_assert!(b.observe(storm, &cfg) > 0.0, "storm delta {storm} did not fire");
    }

    /// The monitor is a pure function of `(t_ns, values, stale_words)`:
    /// feeding the same arbitrary row stream twice renders byte-identical
    /// reports — the determinism the offline `me-inspect doctor` replay
    /// contract rests on.
    #[test]
    fn monitor_is_deterministic(
        rows in proptest::collection::vec(
            (1u64..2_000_000, 0u64..50_000, 0u64..200, 0u64..64), 1..200),
    ) {
        let names: Vec<String> = ["events", "retransmits_nack", "inflight"]
            .iter().map(|s| s.to_string()).collect();
        let kinds = [SourceKind::Counter, SourceKind::Counter, SourceKind::Gauge];
        let cfg = HealthConfig::default();
        let run = || {
            let mut m = HealthMonitor::new(&names, &kinds, cfg);
            let mut t = 0u64;
            for (dt, ev, nack, g) in &rows {
                t += dt;
                m.observe(t, &[*ev, *nack, *g], &[0]);
            }
            m.report().to_json().render()
        };
        prop_assert_eq!(run(), run());
    }
}
