//! Shared helpers for cross-crate integration tests.

use multiedge::{Endpoint, SystemConfig};
use netsim::{build_cluster, Sim};
use std::rc::Rc;

/// Build `n` endpoints over `cfg`'s topology with all-to-all connections.
/// Returns the sim, the endpoints, and `conns[i][j]` = connection id at
/// node `i` toward node `j`.
pub fn rig(cfg: SystemConfig) -> (Sim, netsim::Cluster, Vec<Endpoint>, Vec<Vec<Option<usize>>>) {
    let n = cfg.nodes;
    let sim = Sim::new(cfg.seed);
    let cluster = build_cluster(&sim, cfg.cluster_spec());
    let cfg = Rc::new(cfg);
    let eps = Endpoint::for_cluster(&sim, &cluster, cfg);
    let mut conns = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (cij, cji) = Endpoint::connect(&eps[i], &eps[j]);
            conns[i][j] = Some(cij);
            conns[j][i] = Some(cji);
        }
    }
    (sim, cluster, eps, conns)
}

/// Deterministic payload of `len` bytes from a seed.
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64) % 251) as u8)
        .collect()
}
